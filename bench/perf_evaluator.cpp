// Micro-benchmark for the Theorem-3 evaluation hot path, emitting
// machine-readable JSON so the bench trajectory is tracked across PRs
// (`BENCH_evaluator.json`: ns/eval by n, strategy, math backend and
// thread count; tools/check_bench_schema.py validates the schema in CI).
//
//   $ perf_evaluator --quick
//   $ perf_evaluator --sizes 100,200,400 --eval-threads 1,2,4 --repeats 5
//
// Strategies:
//   serial      the optimized serial fast path (the sweep inner loop)
//   kblock      the k-blocked parallel evaluation on a shared ThreadPool
//               (one row per --eval-threads entry > 1)
//   algorithm1  the literal O(n^4) Algorithm-1 transcription (small n
//               only — it exists as an executable specification)
//
// Each strategy runs once per --math backend (exact = libm, fast =
// batched polynomial kernels). Noise handling: every measurement is
// `--repeats` independent samples of at least --min-time-ms each;
// ns_per_eval is the median sample (robust against one preempted run)
// and ns_per_eval_min the fastest (the machine's attainable floor).
//
// Dependency-free by design (hand-rolled steady_clock timing, no
// google-benchmark), so the bench always builds and its JSON is always
// producible in CI. Every kblock measurement also asserts bit-identity
// against the serial value of its backend, and every fast measurement
// asserts 1e-10 relative agreement with exact — a perf run that silently
// diverged would be worthless.
#include <sys/resource.h>

#include <algorithm>
#include <chrono>
#include <cctype>
#include <cmath>
#include <cstdint>
#include <fstream>
#include <iostream>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "core/evaluator.hpp"
#include "core/evaluator_naive.hpp"
#include "core/math_kernels.hpp"
#include "dag/linearize.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "support/cli.hpp"
#include "support/error.hpp"
#include "support/stats.hpp"
#include "support/table.hpp"
#include "support/threading.hpp"
#include "workflows/generator.hpp"

using namespace fpsched;

namespace {

struct Fixture {
  TaskGraph graph;
  FailureModel model{1e-3, 0.0};
  Schedule schedule;

  explicit Fixture(std::size_t n)
      : graph(generate_cybershake({.task_count = n, .seed = 5,
                                   .cost_model = CostModel::proportional(0.1)})) {
    schedule = make_schedule(linearize(graph.dag(), graph.weights(),
                                       LinearizeMethod::depth_first));
    for (VertexId v = 0; v < graph.task_count(); v += 3) schedule.checkpointed[v] = 1;
  }
};

struct BenchRow {
  std::size_t n = 0;
  std::string strategy;
  std::string math = "exact";
  std::size_t threads = 1;
  double ns_per_eval = 0.0;      // median over the repeats
  double ns_per_eval_min = 0.0;  // fastest repeat
  std::size_t evals = 0;         // total across all repeats
  std::size_t repeats = 0;
  double expected_makespan = 0.0;

  /// Instance-scale provenance ("generate"/"linearize" rows only): which
  /// workflow was instantiated, its edge count, the bytes the frozen
  /// instance holds, and the process peak RSS right after the row ran.
  struct InstanceInfo {
    std::string workflow;
    std::size_t edges = 0;
    std::size_t instance_bytes = 0;
    double peak_rss_mb = 0.0;
  };
  std::optional<InstanceInfo> instance;
};

/// Lowercased workflow tag ("genome"), matching the schema/CLI spelling
/// rather than the display name to_string produces ("Genome").
std::string workflow_tag(WorkflowKind kind) {
  std::string tag = to_string(kind);
  std::transform(tag.begin(), tag.end(), tag.begin(),
                 [](unsigned char c) { return static_cast<char>(std::tolower(c)); });
  return tag;
}

/// Process peak resident set in MB (ru_maxrss is KB on Linux).
double peak_rss_mb() {
  rusage usage{};
  if (getrusage(RUSAGE_SELF, &usage) != 0) return 0.0;
  return static_cast<double>(usage.ru_maxrss) / 1024.0;
}

struct Measurement {
  double median_ns = 0.0;
  double min_ns = 0.0;
  std::size_t evals = 0;
};

/// One sample: calls `eval` until `min_time_ms` elapsed (at least once,
/// at most `max_evals` calls) and returns mean ns/eval.
template <typename Eval>
double sample(double min_time_ms, std::size_t max_evals, std::size_t& evals, double& value,
              const Eval& eval) {
  using clock = std::chrono::steady_clock;
  const clock::time_point start = clock::now();
  std::size_t count = 0;
  double elapsed_ns = 0.0;
  do {
    value = eval();
    ++count;
    elapsed_ns = std::chrono::duration<double, std::nano>(clock::now() - start).count();
  } while (elapsed_ns < min_time_ms * 1e6 && count < max_evals);
  evals += count;
  return elapsed_ns / static_cast<double>(count);
}

/// `repeats` independent samples; median and min of the per-sample means.
template <typename Eval>
Measurement measure(std::size_t repeats, double min_time_ms, std::size_t max_evals,
                    double& value, const Eval& eval) {
  value = eval();  // warm-up (touches every scratch buffer once)
  Measurement out;
  std::vector<double> samples(repeats);
  for (double& s : samples) s = sample(min_time_ms, max_evals, out.evals, value, eval);
  std::sort(samples.begin(), samples.end());
  out.min_ns = samples.front();
  const std::size_t mid = repeats / 2;
  out.median_ns =
      repeats % 2 ? samples[mid] : 0.5 * (samples[mid - 1] + samples[mid]);
  return out;
}

/// Round-trip precision, with non-finite values quoted ("inf"/"nan") so
/// the output stays parseable JSON even on failure-dominated fixtures —
/// same convention as the NDJSON record sink.
std::string json_number(double value) {
  std::string text = format_double_full(value);
  // Built with append rather than `"\"" + ... + "\""`: the rvalue
  // string::insert that operator+ chain lowers to trips GCC 12's
  // -Wrestrict false positive (GCC PR105651).
  if (!std::isfinite(value)) {
    text.insert(text.begin(), '"');
    text.push_back('"');
  }
  return text;
}

std::string to_json(const std::vector<BenchRow>& rows) {
  std::string out = "{\"bench\":\"evaluator\",\"compiler\":\"" + std::string(__VERSION__) +
                    "\",\"threads_available\":" +
                    std::to_string(std::thread::hardware_concurrency()) +
                    ",\"fixture\":{\"workflow\":\"cybershake\","
                    "\"seed\":5,\"lambda\":0.001,\"cost_model\":\"proportional(0.1)\","
                    "\"linearization\":\"DF\",\"checkpoint_every\":3},\"results\":[";
  bool first = true;
  for (const BenchRow& row : rows) {
    if (!first) out += ',';
    first = false;
    out += "{\"n\":" + std::to_string(row.n) + ",\"strategy\":\"" + row.strategy +
           "\",\"math\":\"" + row.math + "\",\"threads\":" + std::to_string(row.threads) +
           ",\"ns_per_eval\":" + json_number(row.ns_per_eval) +
           ",\"ns_per_eval_min\":" + json_number(row.ns_per_eval_min) +
           ",\"evals\":" + std::to_string(row.evals) +
           ",\"repeats\":" + std::to_string(row.repeats) +
           ",\"expected_makespan\":" + json_number(row.expected_makespan);
    if (row.instance) {
      out += ",\"workflow\":\"" + row.instance->workflow +
             "\",\"edges\":" + std::to_string(row.instance->edges) +
             ",\"instance_bytes\":" + std::to_string(row.instance->instance_bytes) +
             ",\"peak_rss_mb\":" + json_number(row.instance->peak_rss_mb);
    }
    out += "}";
  }
  out += "],\"peak_rss_mb\":" + json_number(peak_rss_mb()) + "}";
  return out;
}

void log_row(const BenchRow& row, double baseline_ns) {
  std::cerr << "n=" << row.n << " " << row.strategy;
  if (row.threads > 1) std::cerr << " x" << row.threads;
  std::cerr << " [" << row.math << "]: " << row.ns_per_eval / 1e3 << " us/eval (median)";
  if (baseline_ns > 0.0 && baseline_ns != row.ns_per_eval) {
    std::cerr << " (" << baseline_ns / row.ns_per_eval << "x vs exact serial)";
  }
  std::cerr << "\n";
}

}  // namespace

int main(int argc, char** argv) {
  CliParser cli("perf_evaluator — Theorem-3 evaluation micro-bench, JSON output "
                "(serial fast path vs k-blocked parallel vs Algorithm 1, exact vs "
                "fast math backends).");
  cli.add_option("sizes", "50,100,200,400,800", "task-count grid (CyberShake fixture)");
  cli.add_option("eval-threads", "1,2,4,8",
                 "thread counts for the k-blocked strategy (1 entries are skipped — serial "
                 "is always measured)");
  cli.add_option("math", "exact,fast", "evaluator math backends to measure");
  cli.add_option("naive-max", "100",
                 "largest n for the O(n^4) Algorithm-1 reference (0 disables it)");
  cli.add_option("min-time-ms", "200", "minimum sampling time per repeat");
  cli.add_option("repeats", "3", "independent samples per measurement (median reported)");
  cli.add_option("max-evals", "10000", "hard cap on evaluations per repeat");
  cli.add_option("out", "BENCH_evaluator.json", "output JSON path (empty = stdout only)");
  cli.add_option("instance-sizes", "10000",
                 "task counts for the generate/linearize instance-scale rows (empty disables "
                 "them)");
  cli.add_option("instance-workflow", "genome",
                 "workflow the instance-scale rows instantiate (montage|ligo|cybershake|"
                 "genome)");
  cli.add_option("max-instance-seconds", "0",
                 "budget: fail when one generate + linearize(DF,BF,RF) pass (fastest repeat) "
                 "takes longer than this many seconds (0 = no budget)");
  cli.add_option("max-instance-rss-mb", "0",
                 "budget: fail when process peak RSS exceeds this after the instance rows "
                 "(0 = no budget)");
  cli.add_flag("instance-only", "run only the instance-scale rows (skip evaluator strategies)");
  cli.add_flag("quick", "small sizes + short sampling for a smoke run");
  cli.add_option("trace", "",
                 "write a chrome://tracing JSON of the run's spans to this file");
  cli.add_flag("stats", "print the telemetry registry as JSON to stderr after the run");
  try {
    if (!cli.parse(argc, argv)) return 0;
    const std::string trace_path = cli.get_string("trace");
    if (!trace_path.empty()) obs::start_tracing();
    std::vector<std::size_t> sizes;
    for (const auto s : cli.get_int_list("sizes")) {
      if (s < 1) throw InvalidArgument("option --sizes: task counts must be >= 1");
      sizes.push_back(static_cast<std::size_t>(s));
    }
    std::vector<std::size_t> thread_grid;
    for (const auto t : cli.get_int_list("eval-threads")) {
      if (t < 1) throw InvalidArgument("option --eval-threads: thread counts must be >= 1");
      if (static_cast<std::size_t>(t) > kMaxPoolThreads) {
        // Same ceiling the engine applies to CLI/HTTP thread counts: an
        // absurd value must not exhaust the host's thread limit.
        throw InvalidArgument("option --eval-threads: thread counts must be <= " +
                              std::to_string(kMaxPoolThreads));
      }
      thread_grid.push_back(static_cast<std::size_t>(t));
    }
    std::vector<EvalMath> backends;
    for (const std::string& name : cli.get_string_list("math")) {
      backends.push_back(parse_eval_math(name));
    }
    if (backends.empty()) throw InvalidArgument("option --math: need at least one backend");
    std::size_t naive_max = cli.get_count("naive-max");
    double min_time_ms = cli.get_double("min-time-ms");
    const std::size_t repeats = cli.get_count("repeats", 1);
    std::size_t max_evals = cli.get_count("max-evals", 1);
    if (cli.get_flag("quick")) {
      sizes = {50, 100};
      min_time_ms = 20.0;
      naive_max = std::min<std::size_t>(naive_max, 50);
    }

    std::vector<std::size_t> instance_sizes;
    if (!cli.get_string("instance-sizes").empty()) {
      for (const auto s : cli.get_int_list("instance-sizes")) {
        if (s < 1) throw InvalidArgument("option --instance-sizes: task counts must be >= 1");
        instance_sizes.push_back(static_cast<std::size_t>(s));
      }
    }
    WorkflowKind instance_kind = WorkflowKind::genome;
    {
      const std::string name = cli.get_string("instance-workflow");
      bool known = false;
      for (const WorkflowKind kind : all_workflow_kinds()) {
        if (workflow_tag(kind) == name) {
          instance_kind = kind;
          known = true;
        }
      }
      if (!known) {
        throw InvalidArgument("option --instance-workflow: unknown workflow '" + name + "'");
      }
    }
    const double max_instance_seconds = cli.get_double("max-instance-seconds");
    const double max_instance_rss_mb = cli.get_double("max-instance-rss-mb");
    if (cli.get_flag("instance-only")) sizes.clear();

    std::vector<BenchRow> rows;
    for (const std::size_t n : sizes) {
      const Fixture fixture(n);
      const ScheduleEvaluator evaluator(fixture.graph, fixture.model);
      EvaluatorWorkspace ws;

      double exact_serial_ns = 0.0;
      bool have_exact = false;
      bool have_fast = false;
      double exact_serial_value = 0.0;
      double fast_serial_value = 0.0;
      for (const EvalMath math : backends) {
        BenchRow serial{n, "serial", to_string(math), 1, 0.0, 0.0, 0, repeats, 0.0, std::nullopt};
        const Measurement m =
            measure(repeats, min_time_ms, max_evals, serial.expected_makespan, [&] {
              return evaluator.expected_makespan(fixture.schedule, ws, /*validate=*/false,
                                                 {.math = math});
            });
        serial.ns_per_eval = m.median_ns;
        serial.ns_per_eval_min = m.min_ns;
        serial.evals = m.evals;
        if (math == EvalMath::exact) {
          exact_serial_value = serial.expected_makespan;
          exact_serial_ns = serial.ns_per_eval;
          have_exact = true;
        } else {
          fast_serial_value = serial.expected_makespan;
          have_fast = true;
        }
        if (have_exact && have_fast &&
            relative_difference(exact_serial_value, fast_serial_value) > 1e-10) {
          throw Error("fast backend diverged from exact beyond 1e-10 (n=" +
                      std::to_string(n) + ")");
        }
        rows.push_back(serial);
        log_row(serial, exact_serial_ns);

        for (const std::size_t threads : thread_grid) {
          if (threads <= 1) continue;
          // Pool width threads - 1: the measuring thread helps through
          // the TaskGroup wait, exactly like an engine worker would.
          ThreadPool pool(threads - 1);
          const EvalParallel parallel{threads, &pool, math};
          BenchRow row{n, "kblock", to_string(math), threads, 0.0, 0.0, 0, repeats, 0.0, std::nullopt};
          const Measurement km =
              measure(repeats, min_time_ms, max_evals, row.expected_makespan, [&] {
                return evaluator.expected_makespan(fixture.schedule, ws, /*validate=*/false,
                                                   parallel);
              });
          row.ns_per_eval = km.median_ns;
          row.ns_per_eval_min = km.min_ns;
          row.evals = km.evals;
          if (row.expected_makespan != serial.expected_makespan) {
            throw Error("k-blocked evaluation diverged from the serial path (n=" +
                        std::to_string(n) + ", threads=" + std::to_string(threads) +
                        ", math=" + to_string(math) + ")");
          }
          rows.push_back(row);
          log_row(row, exact_serial_ns);
        }
      }

      if (naive_max > 0 && n <= naive_max) {
        BenchRow naive{n, "algorithm1", "exact", 1, 0.0, 0.0, 0, repeats, 0.0, std::nullopt};
        const Measurement nm =
            measure(repeats, min_time_ms, /*max_evals=*/5, naive.expected_makespan, [&] {
              return evaluate_reference(fixture.graph, fixture.model, fixture.schedule);
            });
        naive.ns_per_eval = nm.median_ns;
        naive.ns_per_eval_min = nm.min_ns;
        naive.evals = nm.evals;
        rows.push_back(naive);
        log_row(naive, exact_serial_ns);
      }
    }

    // Instance-scale rows: how long one whole-instance generate and one
    // DF+BF+RF linearization pass take, and what the frozen SoA instance
    // costs in memory — the provenance trail for the 10^6-task layer.
    for (const std::size_t n : instance_sizes) {
      const GeneratorConfig config{.task_count = n, .seed = 5,
                                   .cost_model = CostModel::proportional(0.1)};
      TaskGraph instance;

      BenchRow gen{n, "generate", "exact", 1, 0.0, 0.0, 0, repeats, 0.0, std::nullopt};
      double unused = 0.0;
      const Measurement gm = measure(repeats, min_time_ms, max_evals, unused, [&] {
        instance = generate_workflow(instance_kind, config);
        return 0.0;
      });
      gen.ns_per_eval = gm.median_ns;
      gen.ns_per_eval_min = gm.min_ns;
      gen.evals = gm.evals;
      gen.instance = BenchRow::InstanceInfo{workflow_tag(instance_kind),
                                            instance.dag().edge_count(),
                                            instance.memory_bytes(), peak_rss_mb()};
      rows.push_back(gen);
      log_row(gen, 0.0);

      BenchRow lin{n, "linearize", "exact", 1, 0.0, 0.0, 0, repeats, 0.0, std::nullopt};
      LinearizeWorkspace lws;
      std::vector<VertexId> order;
      const std::span<const double> weights = instance.weights_view();
      const Measurement lm = measure(repeats, min_time_ms, max_evals, unused, [&] {
        linearize_into(instance.dag(), weights, LinearizeMethod::depth_first, {}, lws, order);
        linearize_into(instance.dag(), weights, LinearizeMethod::breadth_first, {}, lws, order);
        linearize_into(instance.dag(), weights, LinearizeMethod::random_first, {}, lws, order);
        return 0.0;
      });
      lin.ns_per_eval = lm.median_ns;
      lin.ns_per_eval_min = lm.min_ns;
      lin.evals = lm.evals;
      lin.instance = BenchRow::InstanceInfo{workflow_tag(instance_kind),
                                            instance.dag().edge_count(),
                                            instance.memory_bytes(), peak_rss_mb()};
      rows.push_back(lin);
      log_row(lin, 0.0);

      if (max_instance_seconds > 0.0) {
        const double pass_seconds = (gm.min_ns + lm.min_ns) * 1e-9;
        if (pass_seconds > max_instance_seconds) {
          throw Error("instance budget exceeded: generate + linearize at n=" +
                      std::to_string(n) + " took " + format_double(pass_seconds, 2) +
                      " s (budget " + format_double(max_instance_seconds, 2) + " s)");
        }
      }
      if (max_instance_rss_mb > 0.0 && peak_rss_mb() > max_instance_rss_mb) {
        throw Error("instance budget exceeded: peak RSS " + format_double(peak_rss_mb(), 1) +
                    " MB after n=" + std::to_string(n) + " (budget " +
                    format_double(max_instance_rss_mb, 1) + " MB)");
      }
    }

    const std::string json = to_json(rows);
    std::cout << json << "\n";
    const std::string out_path = cli.get_string("out");
    if (!out_path.empty()) {
      std::ofstream file(out_path);
      if (!file.good()) throw InvalidArgument("cannot open " + out_path + " for writing");
      file << json << "\n";
      file.flush();
      if (!file.good()) throw Error("failed writing " + out_path);
      std::cerr << "wrote " << out_path << "\n";
    }
    if (!trace_path.empty()) {
      obs::stop_tracing();
      obs::write_trace_file(trace_path);
    }
    if (cli.get_flag("stats")) {
      std::cerr << obs::MetricsRegistry::global().json() << "\n";
    }
  } catch (const Error& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
  return 0;
}
