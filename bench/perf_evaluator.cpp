// Micro-benchmark for the Theorem-3 evaluation hot path, emitting
// machine-readable JSON so the bench trajectory is tracked across PRs
// (`BENCH_evaluator.json`: ns/eval by n, strategy and thread count).
//
//   $ perf_evaluator --quick
//   $ perf_evaluator --sizes 100,200,400 --eval-threads 1,2,4,8 --out bench.json
//
// Strategies:
//   serial      the optimized serial fast path (the sweep inner loop)
//   kblock      the k-blocked parallel evaluation on a shared ThreadPool
//               (one row per --eval-threads entry > 1)
//   algorithm1  the literal O(n^4) Algorithm-1 transcription (small n
//               only — it exists as an executable specification)
//
// Dependency-free by design (hand-rolled steady_clock timing, no
// google-benchmark), so the bench always builds and its JSON is always
// producible in CI. Every kblock measurement also asserts bit-identity
// against the serial value — a perf run that silently diverged would be
// worthless.
#include <chrono>
#include <cmath>
#include <cstdint>
#include <fstream>
#include <iostream>
#include <string>
#include <utility>
#include <vector>

#include "core/evaluator.hpp"
#include "core/evaluator_naive.hpp"
#include "dag/linearize.hpp"
#include "support/cli.hpp"
#include "support/error.hpp"
#include "support/table.hpp"
#include "support/threading.hpp"
#include "workflows/generator.hpp"

using namespace fpsched;

namespace {

struct Fixture {
  TaskGraph graph;
  FailureModel model{1e-3, 0.0};
  Schedule schedule;

  explicit Fixture(std::size_t n)
      : graph(generate_cybershake({.task_count = n, .seed = 5,
                                   .cost_model = CostModel::proportional(0.1)})) {
    schedule = make_schedule(linearize(graph.dag(), graph.weights(),
                                       LinearizeMethod::depth_first));
    for (VertexId v = 0; v < graph.task_count(); v += 3) schedule.checkpointed[v] = 1;
  }
};

struct BenchRow {
  std::size_t n = 0;
  std::string strategy;
  std::size_t threads = 1;
  double ns_per_eval = 0.0;
  std::size_t evals = 0;
  double expected_makespan = 0.0;
};

/// Calls `eval` repeatedly until `min_time` elapsed (at least once, at
/// most `max_evals`) and returns mean ns/eval plus the last value.
template <typename Eval>
std::pair<double, std::size_t> measure(double min_time_ms, std::size_t max_evals,
                                       double& value, const Eval& eval) {
  using clock = std::chrono::steady_clock;
  value = eval();  // warm-up (touches every scratch buffer once)
  const clock::time_point start = clock::now();
  std::size_t evals = 0;
  double elapsed_ns = 0.0;
  do {
    value = eval();
    ++evals;
    elapsed_ns = std::chrono::duration<double, std::nano>(clock::now() - start).count();
  } while (elapsed_ns < min_time_ms * 1e6 && evals < max_evals);
  return {elapsed_ns / static_cast<double>(evals), evals};
}

/// Round-trip precision, with non-finite values quoted ("inf"/"nan") so
/// the output stays parseable JSON even on failure-dominated fixtures —
/// same convention as the NDJSON record sink.
std::string json_number(double value) {
  if (!std::isfinite(value)) return "\"" + format_double_full(value) + "\"";
  return format_double_full(value);
}

std::string to_json(const std::vector<BenchRow>& rows) {
  std::string out = "{\"bench\":\"evaluator\",\"fixture\":{\"workflow\":\"cybershake\","
                    "\"seed\":5,\"lambda\":0.001,\"cost_model\":\"proportional(0.1)\","
                    "\"linearization\":\"DF\",\"checkpoint_every\":3},\"results\":[";
  bool first = true;
  for (const BenchRow& row : rows) {
    if (!first) out += ',';
    first = false;
    out += "{\"n\":" + std::to_string(row.n) + ",\"strategy\":\"" + row.strategy +
           "\",\"threads\":" + std::to_string(row.threads) +
           ",\"ns_per_eval\":" + json_number(row.ns_per_eval) +
           ",\"evals\":" + std::to_string(row.evals) +
           ",\"expected_makespan\":" + json_number(row.expected_makespan) + "}";
  }
  out += "]}";
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  CliParser cli("perf_evaluator — Theorem-3 evaluation micro-bench, JSON output "
                "(serial fast path vs k-blocked parallel vs Algorithm 1).");
  cli.add_option("sizes", "50,100,200,400,800", "task-count grid (CyberShake fixture)");
  cli.add_option("eval-threads", "1,2,4,8",
                 "thread counts for the k-blocked strategy (1 entries are skipped — serial "
                 "is always measured)");
  cli.add_option("naive-max", "100",
                 "largest n for the O(n^4) Algorithm-1 reference (0 disables it)");
  cli.add_option("min-time-ms", "200", "minimum sampling time per measurement");
  cli.add_option("max-evals", "10000", "hard cap on evaluations per measurement");
  cli.add_option("out", "BENCH_evaluator.json", "output JSON path (empty = stdout only)");
  cli.add_flag("quick", "small sizes + short sampling for a smoke run");
  try {
    if (!cli.parse(argc, argv)) return 0;
    std::vector<std::size_t> sizes;
    for (const auto s : cli.get_int_list("sizes")) {
      if (s < 1) throw InvalidArgument("option --sizes: task counts must be >= 1");
      sizes.push_back(static_cast<std::size_t>(s));
    }
    std::vector<std::size_t> thread_grid;
    for (const auto t : cli.get_int_list("eval-threads")) {
      if (t < 1) throw InvalidArgument("option --eval-threads: thread counts must be >= 1");
      if (static_cast<std::size_t>(t) > kMaxPoolThreads) {
        // Same ceiling the engine applies to CLI/HTTP thread counts: an
        // absurd value must not exhaust the host's thread limit.
        throw InvalidArgument("option --eval-threads: thread counts must be <= " +
                              std::to_string(kMaxPoolThreads));
      }
      thread_grid.push_back(static_cast<std::size_t>(t));
    }
    std::size_t naive_max = cli.get_count("naive-max");
    double min_time_ms = cli.get_double("min-time-ms");
    std::size_t max_evals = cli.get_count("max-evals", 1);
    if (cli.get_flag("quick")) {
      sizes = {50, 100};
      min_time_ms = 20.0;
      naive_max = std::min<std::size_t>(naive_max, 50);
    }

    std::vector<BenchRow> rows;
    for (const std::size_t n : sizes) {
      const Fixture fixture(n);
      const ScheduleEvaluator evaluator(fixture.graph, fixture.model);
      EvaluatorWorkspace ws;

      BenchRow serial{n, "serial", 1, 0.0, 0, 0.0};
      std::tie(serial.ns_per_eval, serial.evals) =
          measure(min_time_ms, max_evals, serial.expected_makespan, [&] {
            return evaluator.expected_makespan(fixture.schedule, ws, /*validate=*/false);
          });
      rows.push_back(serial);
      std::cerr << "n=" << n << " serial: " << serial.ns_per_eval / 1e3 << " us/eval\n";

      for (const std::size_t threads : thread_grid) {
        if (threads <= 1) continue;
        // Pool width threads - 1: the measuring thread helps through the
        // TaskGroup wait, exactly like an engine worker would.
        ThreadPool pool(threads - 1);
        const EvalParallel parallel{threads, &pool};
        BenchRow row{n, "kblock", threads, 0.0, 0, 0.0};
        std::tie(row.ns_per_eval, row.evals) =
            measure(min_time_ms, max_evals, row.expected_makespan, [&] {
              return evaluator.expected_makespan(fixture.schedule, ws, /*validate=*/false,
                                                 parallel);
            });
        if (row.expected_makespan != serial.expected_makespan) {
          throw Error("k-blocked evaluation diverged from the serial path (n=" +
                      std::to_string(n) + ", threads=" + std::to_string(threads) + ")");
        }
        rows.push_back(row);
        std::cerr << "n=" << n << " kblock x" << threads << ": " << row.ns_per_eval / 1e3
                  << " us/eval (" << serial.ns_per_eval / row.ns_per_eval << "x)\n";
      }

      if (naive_max > 0 && n <= naive_max) {
        BenchRow naive{n, "algorithm1", 1, 0.0, 0, 0.0};
        std::tie(naive.ns_per_eval, naive.evals) =
            measure(min_time_ms, /*max_evals=*/5, naive.expected_makespan, [&] {
              return evaluate_reference(fixture.graph, fixture.model, fixture.schedule);
            });
        rows.push_back(naive);
        std::cerr << "n=" << n << " algorithm1: " << naive.ns_per_eval / 1e3 << " us/eval\n";
      }
    }

    const std::string json = to_json(rows);
    std::cout << json << "\n";
    const std::string out_path = cli.get_string("out");
    if (!out_path.empty()) {
      std::ofstream file(out_path);
      if (!file.good()) throw InvalidArgument("cannot open " + out_path + " for writing");
      file << json << "\n";
      file.flush();
      if (!file.good()) throw Error("failed writing " + out_path);
      std::cerr << "wrote " << out_path << "\n";
    }
  } catch (const Error& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
  return 0;
}
