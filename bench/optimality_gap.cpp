// Optimality-gap study (extension beyond the paper): on instances small
// enough for exhaustive search, how far from the true optimum are the 14
// heuristics and the greedy extension?
//
// The paper can only compare heuristics against each other (the exact
// problem is NP-complete); with the exact solver of core/exact_solver.hpp
// we can quantify the gap on small DAGs:
//  * tiny structured DAGs (Figure-1 shape, fork-join, random layered) —
//    full search over linearizations x checkpoint subsets;
//  * medium chains — DP optimum;
//  * fixed-order subsets at n = 16 — optimum over checkpoint sets for the
//    DF order.
//
// Instances are drawn serially (fixed RNG order); the studies — exact
// search, 14-heuristic run, greedy — are sharded across the experiment
// engine's workers and reported in instance order.
#include <iostream>

#include "core/exact_solver.hpp"
#include "core/theory_chain.hpp"
#include "engine/engine.hpp"
#include "heuristics/greedy.hpp"
#include "support/cli.hpp"
#include "support/error.hpp"
#include "support/rng.hpp"
#include "support/table.hpp"
#include "workflows/synthetic.hpp"

using namespace fpsched;

namespace {

struct StudySpec {
  std::string instance;
  TaskGraph graph;
  FailureModel model{1e-3, 0.0};
  bool full_search = false;
  bool chain_dp_optimum = false;
};

struct Row {
  double optimum = 0.0;
  double best14 = 0.0;
  std::string best14_name;
  double greedy = 0.0;
};

Row study(const StudySpec& spec, EvaluatorWorkspace& ws, const engine::ExperimentEngine& eng) {
  const ScheduleEvaluator evaluator(spec.graph, spec.model);
  ExactSolverOptions exact_options;
  exact_options.threads = eng.inner_threads();
  Row row;
  if (spec.chain_dp_optimum) {
    // For chains the DP gives the true optimum over checkpoint sets.
    row.optimum = solve_chain_optimal(spec.graph, spec.model).expected_makespan;
  } else if (spec.full_search) {
    row.optimum = solve_exact(evaluator, exact_options).expected_makespan;
  } else {
    const auto order =
        linearize(spec.graph.dag(), spec.graph.weights(), LinearizeMethod::depth_first);
    row.optimum = solve_exact_fixed_order(evaluator, order, exact_options).expected_makespan;
  }
  const auto results = run_heuristics(evaluator, all_heuristics(), eng.worker_options(ws));
  const HeuristicResult& best = results[best_result_index(results)];
  row.best14 = best.evaluation.expected_makespan;
  row.best14_name = best.spec.name();
  const auto order =
      linearize(spec.graph.dag(), spec.graph.weights(), LinearizeMethod::depth_first);
  row.greedy = greedy_checkpoint_search(evaluator, order, {.threads = eng.inner_threads()})
                   .expected_makespan;
  return row;
}

}  // namespace

int main(int argc, char** argv) {
  CliParser cli("Optimality gap of the heuristics on exhaustively solvable instances.");
  cli.add_option("seed", "11", "instance randomization seed");
  cli.add_option("threads", "0", "study-shard worker threads (0 = all cores)");
  try {
    if (!cli.parse(argc, argv)) return 0;
    Rng rng(static_cast<std::uint64_t>(cli.get_int("seed")));

    std::vector<StudySpec> specs;
    {
      StudySpec spec;
      spec.instance = "figure-1 (8 tasks, full)";
      spec.graph = make_paper_figure1(25.0);
      spec.graph.apply_cost_model(CostModel::proportional(0.15));
      spec.model = FailureModel(4e-3, 0.0);
      spec.full_search = true;
      specs.push_back(std::move(spec));
    }
    {
      StudySpec spec;
      spec.instance = "fork-join 2x3 (8 tasks, full)";
      spec.graph = make_fork_join(2, 3, 30.0);
      spec.graph.apply_cost_model(CostModel::proportional(0.1));
      spec.model = FailureModel(3e-3, 0.0);
      spec.full_search = true;
      specs.push_back(std::move(spec));
    }
    for (int i = 0; i < 2; ++i) {
      StudySpec spec;
      spec.instance = "layered random #" + std::to_string(i) + " (9 tasks, full)";
      spec.graph = make_layered_random(
          {.task_count = 9, .layer_count = 3, .mean_weight = 35.0, .seed = rng()});
      spec.graph.apply_cost_model(CostModel::proportional(0.12));
      spec.model = FailureModel(rng.uniform(2e-3, 6e-3), 0.0);
      spec.full_search = true;
      specs.push_back(std::move(spec));
    }
    {
      StudySpec spec;
      spec.instance = "chain (16 tasks, DP optimum)";
      std::vector<double> weights(16);
      for (double& w : weights) w = rng.uniform(10.0, 90.0);
      spec.graph = make_chain(weights);
      spec.graph.apply_cost_model(CostModel::proportional(0.1));
      spec.model = FailureModel(3e-3, 0.0);
      spec.chain_dp_optimum = true;
      specs.push_back(std::move(spec));
    }
    {
      StudySpec spec;
      spec.instance = "layered random (16 tasks, DF-order subsets)";
      spec.graph = make_layered_random(
          {.task_count = 16, .layer_count = 4, .mean_weight = 30.0, .seed = rng()});
      spec.graph.apply_cost_model(CostModel::proportional(0.1));
      spec.model = FailureModel(3e-3, 0.0);
      specs.push_back(std::move(spec));
    }

    const engine::ExperimentEngine eng({.threads = cli.get_count("threads")});
    std::vector<Row> rows(specs.size());
    eng.for_each(specs.size(), [&](std::size_t i, EvaluatorWorkspace& ws) {
      rows[i] = study(specs[i], ws, eng);
    });

    Table table({"instance", "optimum E[T]", "best of 14", "winner", "gap", "greedy", "greedy gap"});
    for (std::size_t i = 0; i < rows.size(); ++i) {
      const Row& row = rows[i];
      table.row()
          .cell(specs[i].instance)
          .cell(row.optimum, 2)
          .cell(row.best14, 2)
          .cell(row.best14_name)
          .cell(row.best14 / row.optimum - 1.0, 5)
          .cell(row.greedy, 2)
          .cell(row.greedy / row.optimum - 1.0, 5);
    }
    table.print(std::cout);
    std::cout << "\n(gap = value / optimum - 1. 'full' rows search every linearization and\n"
                 " checkpoint subset; the 16-task rows fix the DF order as the reference, so\n"
                 " a heuristic using a different order can show a slightly negative gap.\n"
                 " The paper could not report this table — it lacked an exact solver.)\n";
  } catch (const Error& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
  return 0;
}
