// Optimality-gap study (extension beyond the paper): on instances small
// enough for exhaustive search, how far from the true optimum are the 14
// heuristics and the greedy extension?
//
// The paper can only compare heuristics against each other (the exact
// problem is NP-complete); with the exact solver of core/exact_solver.hpp
// we can quantify the gap on small DAGs:
//  * tiny structured DAGs (Figure-1 shape, fork-join, random layered) —
//    full search over linearizations x checkpoint subsets;
//  * medium chains — DP optimum;
//  * fixed-order subsets at n = 16 — optimum over checkpoint sets for the
//    DF order.
#include <iostream>

#include "bench_common.hpp"
#include "core/exact_solver.hpp"
#include "core/theory_chain.hpp"
#include "heuristics/greedy.hpp"
#include "support/error.hpp"
#include "support/rng.hpp"
#include "support/table.hpp"
#include "workflows/synthetic.hpp"

using namespace fpsched;
using namespace fpsched::bench;

namespace {

struct Row {
  std::string instance;
  double optimum;
  double best14;
  std::string best14_name;
  double greedy;
};

Row study(const std::string& name, const TaskGraph& graph, const FailureModel& model,
          bool full_search) {
  const ScheduleEvaluator evaluator(graph, model);
  Row row;
  row.instance = name;
  if (full_search) {
    row.optimum = solve_exact(evaluator).expected_makespan;
  } else {
    const auto order = linearize(graph.dag(), graph.weights(), LinearizeMethod::depth_first);
    row.optimum = solve_exact_fixed_order(evaluator, order).expected_makespan;
  }
  const auto results = run_heuristics(evaluator, all_heuristics());
  const HeuristicResult& best = results[best_result_index(results)];
  row.best14 = best.evaluation.expected_makespan;
  row.best14_name = best.spec.name();
  const auto order = linearize(graph.dag(), graph.weights(), LinearizeMethod::depth_first);
  row.greedy = greedy_checkpoint_search(evaluator, order).expected_makespan;
  return row;
}

}  // namespace

int main(int argc, char** argv) {
  CliParser cli("Optimality gap of the heuristics on exhaustively solvable instances.");
  cli.add_option("seed", "11", "instance randomization seed");
  try {
    if (!cli.parse(argc, argv)) return 0;
    Rng rng(static_cast<std::uint64_t>(cli.get_int("seed")));

    std::vector<Row> rows;
    {
      TaskGraph graph = make_paper_figure1(25.0);
      graph.apply_cost_model(CostModel::proportional(0.15));
      rows.push_back(study("figure-1 (8 tasks, full)", graph, FailureModel(4e-3, 0.0), true));
    }
    {
      TaskGraph graph = make_fork_join(2, 3, 30.0);
      graph.apply_cost_model(CostModel::proportional(0.1));
      rows.push_back(study("fork-join 2x3 (8 tasks, full)", graph, FailureModel(3e-3, 0.0), true));
    }
    for (int i = 0; i < 2; ++i) {
      TaskGraph graph = make_layered_random(
          {.task_count = 9, .layer_count = 3, .mean_weight = 35.0, .seed = rng()});
      graph.apply_cost_model(CostModel::proportional(0.12));
      rows.push_back(study("layered random #" + std::to_string(i) + " (9 tasks, full)", graph,
                           FailureModel(rng.uniform(2e-3, 6e-3), 0.0), true));
    }
    {
      std::vector<double> weights(16);
      for (double& w : weights) w = rng.uniform(10.0, 90.0);
      TaskGraph graph = make_chain(weights);
      graph.apply_cost_model(CostModel::proportional(0.1));
      const FailureModel model(3e-3, 0.0);
      // For chains the DP gives the true optimum over checkpoint sets.
      Row row = study("chain (16 tasks, DP optimum)", graph, model, false);
      row.optimum = solve_chain_optimal(graph, model).expected_makespan;
      rows.push_back(row);
    }
    {
      TaskGraph graph = make_layered_random(
          {.task_count = 16, .layer_count = 4, .mean_weight = 30.0, .seed = rng()});
      graph.apply_cost_model(CostModel::proportional(0.1));
      rows.push_back(study("layered random (16 tasks, DF-order subsets)", graph,
                           FailureModel(3e-3, 0.0), false));
    }

    Table table({"instance", "optimum E[T]", "best of 14", "winner", "gap", "greedy", "greedy gap"});
    for (const Row& row : rows) {
      table.row()
          .cell(row.instance)
          .cell(row.optimum, 2)
          .cell(row.best14, 2)
          .cell(row.best14_name)
          .cell(row.best14 / row.optimum - 1.0, 5)
          .cell(row.greedy, 2)
          .cell(row.greedy / row.optimum - 1.0, 5);
    }
    table.print(std::cout);
    std::cout << "\n(gap = value / optimum - 1. 'full' rows search every linearization and\n"
                 " checkpoint subset; the 16-task rows fix the DF order as the reference, so\n"
                 " a heuristic using a different order can show a slightly negative gap.\n"
                 " The paper could not report this table — it lacked an exact solver.)\n";
  } catch (const Error& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
  return 0;
}
