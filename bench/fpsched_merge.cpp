// fpsched_merge — validate and concatenate per-shard NDJSON record
// files from a multi-host run.
//
//   host1$ fpsched_run fig2 --format ndjson --out out --shard 1/3
//   host2$ fpsched_run fig2 --format ndjson --out out --shard 2/3
//   host3$ fpsched_run fig2 --format ndjson --out out --shard 3/3
//   $ fpsched_merge out/fig2.shard-{1,2,3}-of-3.ndjson
//       --experiment fig2 --require-complete --out fig2.ndjson
//
// The merged file is byte-identical to the unsharded
// `fpsched_run fig2 --format ndjson` output. Pass the SAME grid flags
// the producing runs used (--quick, --sizes, --seed, ...): the merge
// re-derives the experiment's flattened scenario list from them and
// checks every record's provenance against the position it lands on, so
// missing/duplicated/misordered shard files — and option mismatches —
// fail loudly instead of yielding a plausible-looking wrong merge.
#include <filesystem>
#include <fstream>
#include <iostream>

#include "bench_common.hpp"
#include "service/shard_merge.hpp"
#include "support/error.hpp"
#include "support/socket.hpp"

using namespace fpsched;
using namespace fpsched::bench;

int main(int argc, char** argv) {
  CliParser cli(
      "fpsched_merge — validate per-shard NDJSON files against the experiment's scenario "
      "list and concatenate them into the unsharded stream.");
  cli.allow_positionals("shard-file", "per-shard NDJSON files, in shard order (1/N first)");
  cli.add_option("experiment", "",
                 "the experiment the shards came from (required; see fpsched_run --list)");
  cli.add_option("out", "", "merged NDJSON output file (default: stdout)");
  cli.add_flag("require-complete",
               "fail unless the shards cover every scenario of the experiment (without it, a "
               "gapless ordered prefix is accepted)");
  add_sweep_options(cli);
  try {
    ignore_sigpipe();
    const auto options = parse_figure_options(cli, argc, argv);
    if (!options) return 0;
    const std::string name = cli.get_string("experiment");
    if (name.empty()) {
      throw InvalidArgument("--experiment is required (see fpsched_run --list)");
    }
    const engine::Experiment& experiment = engine::ExperimentRegistry::global().find(name);
    const std::vector<std::string>& files = cli.positionals();
    if (files.empty()) {
      throw InvalidArgument("no shard files given; pass them as positionals, in shard order");
    }

    service::MergeOptions merge;
    merge.require_complete = cli.get_flag("require-complete");

    const std::string out_path = cli.get_string("out");
    std::ofstream out_file;
    if (!out_path.empty()) {
      // Opening truncates: an --out that names one of the inputs would
      // destroy that shard before it is ever read.
      std::error_code ec;
      const auto out_canonical = std::filesystem::weakly_canonical(out_path, ec);
      for (const std::string& file : files) {
        std::error_code file_ec;
        const auto file_canonical = std::filesystem::weakly_canonical(file, file_ec);
        if (!ec && !file_ec && out_canonical == file_canonical) {
          throw InvalidArgument("--out " + out_path +
                                " is one of the input shard files; writing would destroy it");
        }
      }
      out_file.open(out_path, std::ios::binary);
      if (!out_file.good()) {
        throw InvalidArgument("cannot open " + out_path + " for writing");
      }
    }
    std::ostream& out = out_path.empty() ? std::cout : out_file;

    const service::MergeReport report =
        service::merge_ndjson_shards(experiment, *options, files, out, merge);
    out.flush();
    if (!out.good()) throw InvalidArgument("error writing the merged stream");
    std::cerr << "merged " << report.files << " shard file" << (report.files == 1 ? "" : "s")
              << ": " << report.records << "/" << report.expected << " records ("
              << (report.complete() ? "complete" : "prefix") << ")\n";
  } catch (const Error& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
  return 0;
}
