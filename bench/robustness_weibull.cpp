// Robustness study (extension beyond the paper): how do schedules
// optimized under the exponential-failure assumption perform when the
// platform actually fails with Weibull inter-arrival times of the same
// MTBF?
//
// For each workflow we pick the best heuristic schedule under the
// exponential model (the 14-heuristic search is sharded across the
// experiment engine's workers), then simulate it under (i) exponential
// failures (the model's own assumption — sanity row), (ii) Weibull shape
// 0.7 (bursty / infant mortality, as observed on real HPC platforms), and
// (iii) Weibull shape 1.5 (aging). Reported: simulated mean makespan vs
// the analytic exponential prediction.
#include <iostream>

#include "bench_common.hpp"
#include "sim/trial_runner.hpp"
#include "support/error.hpp"
#include "support/table.hpp"

using namespace fpsched;
using namespace fpsched::bench;

int main(int argc, char** argv) {
  CliParser cli("Robustness of exponential-optimized schedules under Weibull failures.");
  cli.add_option("tasks", "150", "workflow size");
  cli.add_option("trials", "20000", "Monte-Carlo trials per cell");
  try {
    const auto options = parse_figure_options(cli, argc, argv);
    if (!options) return 0;
    const std::size_t size = cli.get_count("tasks", 1);
    const std::size_t trials = cli.get_count("trials", 1);
    const engine::ExperimentEngine eng = make_engine(*options);

    std::cout << "Robustness under non-exponential failures (" << size
              << " tasks, c_i = r_i = 0.1 w_i, equal MTBF across rows)\n";
    Table table({"workflow", "schedule", "analytic E[T]", "sim exponential",
                 "sim weibull k=0.7", "sim weibull k=1.5"});
    for (const WorkflowKind kind : all_workflow_kinds()) {
      const double lambda = paper_lambda(kind);
      const TaskGraph graph = make_instance(kind, size, CostModel::proportional(0.1), *options);
      const ScheduleEvaluator evaluator(graph, FailureModel(lambda, 0.0));
      HeuristicOptions heuristic_options;
      heuristic_options.sweep.stride = options->stride;
      const auto results = eng.run_heuristics(evaluator, all_heuristics(), heuristic_options);
      const HeuristicResult& best = results[best_result_index(results)];

      const FaultSimulator sim(graph, FailureModel(lambda, 0.0), best.schedule);
      const TrialOptions trial_options{.trials = trials, .seed = 31, .threads = 0};
      const MonteCarloSummary expo = run_trials_with_distribution(
          sim, FaultDistribution::exponential(lambda), trial_options);
      const MonteCarloSummary bursty = run_trials_with_distribution(
          sim, FaultDistribution::weibull_from_mtbf(0.7, 1.0 / lambda), trial_options);
      const MonteCarloSummary aging = run_trials_with_distribution(
          sim, FaultDistribution::weibull_from_mtbf(1.5, 1.0 / lambda), trial_options);

      table.row()
          .cell(to_string(kind))
          .cell(best.spec.name())
          .cell(best.evaluation.expected_makespan, 1)
          .cell(format_double(expo.mean_makespan(), 1) + " +/- " +
                format_double(expo.ci95(), 1))
          .cell(format_double(bursty.mean_makespan(), 1) + " +/- " +
                format_double(bursty.ci95(), 1))
          .cell(format_double(aging.mean_makespan(), 1) + " +/- " +
                format_double(aging.ci95(), 1));
    }
    table.print(std::cout);
    std::cout << "\nReading guide: the exponential column must reproduce the analytic value\n"
                 "(model sanity); bursty failures (k=0.7) cluster, so the same MTBF wastes\n"
                 "less completed work and lands below the exponential prediction, while\n"
                 "aging platforms (k=1.5) spread failures evenly and typically cost more.\n";
  } catch (const Error& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
  return 0;
}
