// Robustness study (extension beyond the paper): how do schedules
// optimized under the exponential-failure assumption perform when the
// platform actually fails with Weibull inter-arrival times of the same
// MTBF?
//
// The study lives in the experiment registry as "robustness" (see
// src/engine/figures.cpp): per workflow it picks the best heuristic
// schedule under the exponential model, then simulates it under (i)
// exponential failures (the model's own assumption — sanity row), (ii)
// Weibull shape 0.7 (bursty / infant mortality, as observed on real HPC
// platforms), and (iii) Weibull shape 1.5 (aging). This binary is the
// usual thin shim, so the study shards, streams, and serves like every
// figure (`fpsched_run robustness`, `POST /runs?experiment=robustness`).
#include "bench_common.hpp"

int main(int argc, char** argv) { return fpsched::bench::figure_main("robustness", argc, argv); }
