#include "bench_common.hpp"

#include <algorithm>
#include <filesystem>
#include <ostream>

#include "support/error.hpp"

namespace fpsched::bench {

std::optional<FigureOptions> parse_figure_options(CliParser& cli, int argc,
                                                  const char* const* argv) {
  cli.add_option("sizes", "50,100,200,300,400,500,600,700", "task-count grid");
  cli.add_option("stride", "1", "N-sweep stride (1 = exhaustive, as in the paper)");
  cli.add_option("seed", "42", "workflow generation seed");
  cli.add_option("weight-cv", "0.2", "coefficient of variation of task weights");
  cli.add_option("csv", "", "directory for CSV output (created files: <figure>.csv)");
  cli.add_option("threads", "0", "scenario-shard worker threads (0 = all cores)");
  cli.add_flag("no-instance-cache",
               "re-generate and re-linearize the instance for every scenario "
               "(the pre-cache engine path; results are identical)");
  cli.add_flag("quick", "small grid + strided sweep for a fast smoke run");
  if (!cli.parse(argc, argv)) return std::nullopt;

  FigureOptions options;
  options.sizes.clear();
  for (const auto s : cli.get_int_list("sizes")) {
    if (s < 1) throw InvalidArgument("option --sizes: task counts must be >= 1");
    options.sizes.push_back(static_cast<std::size_t>(s));
  }
  options.stride = cli.get_count("stride", 1);
  options.seed = static_cast<std::uint64_t>(cli.get_int("seed"));
  options.weight_cv = cli.get_double("weight-cv");
  options.csv_dir = cli.get_string("csv");
  // Fail before computing a possibly hours-long grid, not after.
  if (!options.csv_dir.empty() && !std::filesystem::is_directory(options.csv_dir)) {
    throw InvalidArgument("option --csv: '" + options.csv_dir + "' is not a directory");
  }
  options.threads = cli.get_count("threads");
  options.instance_cache = !cli.get_flag("no-instance-cache");
  if (cli.get_flag("quick")) {
    options.sizes = {50, 100, 200, 300};
    options.stride = std::max<std::size_t>(options.stride, 4);
  }
  return options;
}

engine::ExperimentEngine make_engine(const FigureOptions& options) {
  return engine::ExperimentEngine(
      {.threads = options.threads, .instance_cache = options.instance_cache});
}

namespace {

/// The shared grid knobs every panel inherits from the CLI. The cost
/// model rides on the generalized grid dimension (a one-point
/// checkpoint-cost list) so every figure grid uses the same axis
/// machinery; a singleton list enumerates identically to the scalar.
engine::ScenarioGrid base_grid(WorkflowKind kind, const CostModel& cost_model,
                               const FigureOptions& options) {
  engine::ScenarioGrid grid;
  grid.workflows = {kind};
  grid.sizes = options.sizes;
  grid.cost_models = {cost_model};
  grid.seed = options.seed;
  grid.weight_cv = options.weight_cv;
  grid.stride = options.stride;
  return grid;
}

std::vector<engine::ScenarioPolicy> best_lin_policies() {
  std::vector<engine::ScenarioPolicy> policies;
  for (const CkptStrategy strategy : all_ckpt_strategies())
    policies.push_back(engine::ScenarioPolicy::best_lin(strategy));
  return policies;
}

}  // namespace

engine::ScenarioGrid linearization_grid(WorkflowKind kind, double lambda,
                                        const CostModel& cost_model,
                                        const FigureOptions& options) {
  engine::ScenarioGrid grid = base_grid(kind, cost_model, options);
  grid.lambdas = {lambda};
  for (const LinearizeMethod lin : all_linearize_methods()) {
    for (const CkptStrategy strategy : {CkptStrategy::by_weight, CkptStrategy::by_cost}) {
      grid.policies.push_back(engine::ScenarioPolicy::fixed({lin, strategy}));
    }
  }
  return grid;
}

engine::ScenarioGrid strategy_grid(WorkflowKind kind, double lambda, const CostModel& cost_model,
                                   const FigureOptions& options) {
  engine::ScenarioGrid grid = base_grid(kind, cost_model, options);
  grid.lambdas = {lambda};
  grid.policies = best_lin_policies();
  return grid;
}

engine::ScenarioGrid lambda_sweep_grid(WorkflowKind kind, std::size_t size,
                                       const std::vector<double>& lambdas,
                                       const CostModel& cost_model,
                                       const FigureOptions& options) {
  engine::ScenarioGrid grid = base_grid(kind, cost_model, options);
  grid.sizes = {size};
  grid.lambdas = lambdas;
  grid.axis = engine::GridAxis::lambda;
  grid.policies = best_lin_policies();
  return grid;
}

engine::ScenarioGrid downtime_sweep_grid(WorkflowKind kind, std::size_t size, double lambda,
                                         const std::vector<double>& downtimes,
                                         const CostModel& cost_model,
                                         const FigureOptions& options) {
  engine::ScenarioGrid grid = base_grid(kind, cost_model, options);
  grid.sizes = {size};
  grid.lambdas = {lambda};
  grid.downtimes = downtimes;
  grid.axis = engine::GridAxis::downtime;
  grid.policies = best_lin_policies();
  return grid;
}

std::string panel_title(WorkflowKind kind, const std::string& subtitle) {
  return to_string(kind) + ": " + subtitle;
}

std::string best_lin_panel_title(WorkflowKind kind, const std::string& subtitle) {
  return to_string(kind) + ": " + subtitle + " (best linearization per strategy)";
}

void emit_panel(std::ostream& os, const engine::Panel& panel, const FigureOptions& options,
                const std::string& slug) {
  engine::TableSink table(os);
  table.emit(panel, slug);
  engine::AsciiChartSink chart(os);
  chart.emit(panel, slug);
  if (!options.csv_dir.empty()) {
    engine::CsvSink csv(options.csv_dir, &os);
    csv.emit(panel, slug);
  }
}

void run_figure(std::ostream& os, std::span<const PanelSpec> panels,
                const FigureOptions& options) {
  // Flatten every panel's grid into one list so the whole figure shards
  // across the engine's workers as a single batch.
  std::vector<engine::ScenarioSpec> specs;
  std::vector<std::size_t> offsets;
  for (const PanelSpec& panel : panels) {
    offsets.push_back(specs.size());
    const std::vector<engine::ScenarioSpec> grid_specs = panel.grid.enumerate();
    specs.insert(specs.end(), grid_specs.begin(), grid_specs.end());
  }

  const engine::ExperimentEngine eng = make_engine(options);
  const std::vector<engine::ScenarioResult> results = eng.run(specs);

  for (std::size_t i = 0; i < panels.size(); ++i) {
    const PanelSpec& panel = panels[i];
    const std::span<const engine::ScenarioResult> slice(results.data() + offsets[i],
                                                        panel.grid.scenario_count());
    emit_panel(os, engine::assemble_panel(panel.grid, slice, panel.title), options, panel.slug);
  }
}

TaskGraph make_instance(WorkflowKind kind, std::size_t size, const CostModel& cost_model,
                        const FigureOptions& options) {
  GeneratorConfig config;
  config.task_count = size;
  config.seed = options.seed + size;  // distinct instance per size, reproducible
  config.weight_cv = options.weight_cv;
  config.cost_model = cost_model;
  return generate_workflow(kind, config);
}

}  // namespace fpsched::bench
