#include "bench_common.hpp"

#include <algorithm>
#include <iostream>
#include <ostream>
#include <vector>

#include "engine/result_sink.hpp"
#include "support/error.hpp"
#include "support/socket.hpp"

namespace fpsched::bench {

void add_sweep_options(CliParser& cli) {
  cli.add_option("tasks", "200", "fixed workflow size for the sweep experiments (fig7/downtime)");
  cli.add_option("downtimes", "0,60,300,900,3600",
                 "downtime grid in seconds (downtime sweep only)");
}

void add_trial_options(CliParser& cli) {
  cli.add_option("trials", "20000",
                 "Monte-Carlo trials per simulated cell (robustness experiment)");
}

std::optional<FigureOptions> parse_figure_options(CliParser& cli, int argc,
                                                  const char* const* argv) {
  cli.add_option("sizes", "50,100,200,300,400,500,600,700", "task-count grid");
  cli.add_option("stride", "1", "N-sweep stride (1 = exhaustive, as in the paper)");
  cli.add_option("seed", "42", "workflow generation seed");
  cli.add_option("weight-cv", "0.2", "coefficient of variation of task weights");
  cli.add_option("csv", "", "directory for CSV output (created files: <figure>.csv)");
  cli.add_option("threads", "0", "scenario-shard worker threads (0 = all cores)");
  cli.add_option("eval-threads", "1",
                 "intra-evaluation k-block workers for the Theorem-3 evaluator (1 = serial, "
                 "0 = all cores); takes effect when scenario sharding alone cannot fill the "
                 "workers (scenarios < --threads, or --threads 1) and is ignored on the "
                 "scenario-saturated path; output is bit-identical for every value");
  cli.add_option("eval-math", "exact",
                 "evaluator transcendental backend: 'exact' (libm, bit-identical to prior "
                 "releases) or 'fast' (batched polynomial kernels, <= 4 ulp per call)");
  cli.add_flag("no-instance-cache",
               "re-generate and re-linearize the instance for every scenario "
               "(the pre-cache engine path; results are identical)");
  cli.add_flag("quick", "small grid + strided sweep for a fast smoke run");
  if (!cli.parse(argc, argv)) return std::nullopt;

  FigureOptions options;
  options.sizes.clear();
  for (const auto s : cli.get_int_list("sizes")) {
    if (s < 1) throw InvalidArgument("option --sizes: task counts must be >= 1");
    options.sizes.push_back(static_cast<std::size_t>(s));
  }
  options.stride = cli.get_count("stride", 1);
  options.seed = static_cast<std::uint64_t>(cli.get_int("seed"));
  options.weight_cv = cli.get_double("weight-cv");
  options.csv_dir = cli.get_string("csv");
  // Fail before computing a possibly hours-long grid, not after: claim the
  // output directory up front (creating it when missing).
  if (!options.csv_dir.empty()) engine::ensure_output_directory(options.csv_dir);
  options.threads = cli.get_count("threads");
  options.eval_threads = cli.get_count("eval-threads");
  options.eval_math = parse_eval_math(cli.get_string("eval-math"));
  options.instance_cache = !cli.get_flag("no-instance-cache");
  if (cli.has_option("tasks")) options.tasks = cli.get_count("tasks", 1);
  if (cli.has_option("trials")) options.trials = cli.get_count("trials", 1);
  if (cli.has_option("downtimes")) {
    options.downtimes = cli.get_double_list("downtimes");
    for (const double d : options.downtimes) {
      if (d < 0.0) throw InvalidArgument("option --downtimes: downtimes must be >= 0");
    }
  }
  if (cli.get_flag("quick")) engine::apply_quick_options(options);
  return options;
}

engine::ExperimentEngine make_engine(const FigureOptions& options) {
  return engine::ExperimentEngine({.threads = options.threads,
                                   .instance_cache = options.instance_cache,
                                   .eval_threads = options.eval_threads,
                                   .eval_math = options.eval_math});
}

void run_figure_experiment(std::ostream& os, const engine::Experiment& experiment,
                           const FigureOptions& options) {
  engine::TableSink table(os);
  engine::AsciiChartSink chart(os);
  std::optional<engine::CsvSink> csv;
  std::vector<engine::ResultSink*> sinks{&table, &chart};
  if (!options.csv_dir.empty()) {
    csv.emplace(options.csv_dir, &os);
    sinks.push_back(&*csv);
  }
  engine::run_experiment(experiment, options, sinks, &os);
}

int figure_main(const std::string& name, int argc, const char* const* argv) {
  try {
    ignore_sigpipe();  // `fig2_linearization | head` must not kill the run
    const engine::Experiment& experiment = engine::ExperimentRegistry::global().find(name);
    CliParser cli(experiment.summary);
    // Only sweep figures take --tasks/--downtimes; the size-axis binaries
    // keep rejecting them (a silently ignored option reads as a resized
    // grid that never happened).
    if (experiment.sweep_options) add_sweep_options(cli);
    if (experiment.trial_options) add_trial_options(cli);
    const auto options = parse_figure_options(cli, argc, argv);
    if (!options) return 0;
    run_figure_experiment(std::cout, experiment, *options);
    // With SIGPIPE ignored a dead consumer surfaces as a failed stream;
    // truncated figure output must not exit 0.
    std::cout.flush();
    if (!std::cout.good()) {
      std::cerr << "error: stdout failed mid-write (closed pipe?)\n";
      return 1;
    }
  } catch (const Error& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
  return 0;
}

TaskGraph make_instance(WorkflowKind kind, std::size_t size, const CostModel& cost_model,
                        const FigureOptions& options) {
  GeneratorConfig config;
  config.task_count = size;
  config.seed = options.seed + size;  // distinct instance per size, reproducible
  config.weight_cv = options.weight_cv;
  config.cost_model = cost_model;
  return generate_workflow(kind, config);
}

}  // namespace fpsched::bench
