#include "bench_common.hpp"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <iostream>

#include "support/ascii_plot.hpp"
#include "support/error.hpp"
#include "support/table.hpp"

namespace fpsched::bench {

std::optional<FigureOptions> parse_figure_options(CliParser& cli, int argc,
                                                  const char* const* argv) {
  cli.add_option("sizes", "50,100,200,300,400,500,600,700", "task-count grid");
  cli.add_option("stride", "1", "N-sweep stride (1 = exhaustive, as in the paper)");
  cli.add_option("seed", "42", "workflow generation seed");
  cli.add_option("weight-cv", "0.2", "coefficient of variation of task weights");
  cli.add_option("csv", "", "directory for CSV output (created files: <figure>.csv)");
  cli.add_flag("quick", "small grid + strided sweep for a fast smoke run");
  if (!cli.parse(argc, argv)) return std::nullopt;

  FigureOptions options;
  options.sizes.clear();
  for (const auto s : cli.get_int_list("sizes")) options.sizes.push_back(static_cast<std::size_t>(s));
  options.stride = static_cast<std::size_t>(cli.get_int("stride"));
  options.seed = static_cast<std::uint64_t>(cli.get_int("seed"));
  options.weight_cv = cli.get_double("weight-cv");
  options.csv_dir = cli.get_string("csv");
  if (cli.get_flag("quick")) {
    options.sizes = {50, 100, 200, 300};
    options.stride = std::max<std::size_t>(options.stride, 4);
  }
  return options;
}

void emit_panel(std::ostream& os, const FigurePanel& panel, const FigureOptions& options,
                const std::string& slug) {
  os << "\n=== " << panel.title << " ===\n";
  std::vector<std::string> headers{panel.x_label};
  for (const auto& series : panel.series) headers.push_back(series.name);
  Table table(headers);
  for (std::size_t i = 0; i < panel.xs.size(); ++i) {
    std::vector<std::string> row;
    row.push_back(panel.x_label == "lambda" ? format_double(panel.xs[i], 6)
                                            : std::to_string(static_cast<long long>(panel.xs[i])));
    for (const auto& series : panel.series) row.push_back(format_double(series.ratios[i], 4));
    table.add_row(std::move(row));
  }
  table.print(os);

  // Chart: clip runaway series (e.g. CkptNvr on Genome) so the contenders
  // stay readable; the table above keeps the exact values.
  std::vector<double> finite;
  for (const auto& series : panel.series)
    for (const double r : series.ratios)
      if (std::isfinite(r)) finite.push_back(r);
  if (!finite.empty()) {
    std::sort(finite.begin(), finite.end());
    const double cap = std::max(finite[finite.size() / 2] * 3.0, finite.front() * 1.5);
    bool clipped = false;
    AsciiChart chart("T / T_inf (chart clipped at " + format_double(cap, 2) + ")", 72, 18);
    chart.set_x_label(panel.x_label);
    chart.set_y_label("T / T_inf");
    for (const auto& series : panel.series) {
      PlotSeries plot{series.name, panel.xs, series.ratios};
      for (double& y : plot.ys) {
        if (!std::isfinite(y) || y > cap) {
          y = cap;
          clipped = true;
        }
      }
      chart.add_series(std::move(plot));
    }
    chart.print(os);
    if (clipped) os << "  (some points exceed the chart cap; see the table for exact values)\n";
  }

  if (!options.csv_dir.empty()) {
    const std::string path = options.csv_dir + "/" + slug + ".csv";
    std::ofstream csv(path);
    if (!csv.good()) throw InvalidArgument("cannot open " + path + " for writing");
    table.to_csv(csv);
    os << "  [csv written to " << path << "]\n";
  }
}

double heuristic_ratio(const ScheduleEvaluator& evaluator, const HeuristicSpec& spec,
                       std::size_t stride) {
  HeuristicOptions options;
  options.sweep.stride = stride;
  return run_heuristic(evaluator, spec, options).evaluation.ratio;
}

double best_linearization_ratio(const ScheduleEvaluator& evaluator, CkptStrategy strategy,
                                std::size_t stride, LinearizeMethod* chosen) {
  // CkptNvr / CkptAlws are defined with the DF linearization only (§5).
  if (!is_budgeted(strategy)) {
    if (chosen) *chosen = LinearizeMethod::depth_first;
    return heuristic_ratio(evaluator, {LinearizeMethod::depth_first, strategy}, stride);
  }
  double best = std::numeric_limits<double>::infinity();
  for (const LinearizeMethod lin : all_linearize_methods()) {
    const double ratio = heuristic_ratio(evaluator, {lin, strategy}, stride);
    if (ratio < best) {
      best = ratio;
      if (chosen) *chosen = lin;
    }
  }
  return best;
}

TaskGraph make_instance(WorkflowKind kind, std::size_t size, const CostModel& cost_model,
                        const FigureOptions& options) {
  GeneratorConfig config;
  config.task_count = size;
  config.seed = options.seed + size;  // distinct instance per size, reproducible
  config.weight_cv = options.weight_cv;
  config.cost_model = cost_model;
  return generate_workflow(kind, config);
}

FigurePanel linearization_panel(WorkflowKind kind, double lambda, const CostModel& cost_model,
                                const std::string& subtitle, const FigureOptions& options) {
  FigurePanel panel;
  panel.title = to_string(kind) + ": " + subtitle;
  panel.x_label = "number of tasks";
  for (const LinearizeMethod lin : all_linearize_methods()) {
    for (const CkptStrategy strategy : {CkptStrategy::by_weight, CkptStrategy::by_cost}) {
      panel.series.push_back({to_string(lin) + "-" + to_string(strategy), {}});
    }
  }
  for (const std::size_t size : options.sizes) {
    panel.xs.push_back(static_cast<double>(size));
    const TaskGraph graph = make_instance(kind, size, cost_model, options);
    const ScheduleEvaluator evaluator(graph, FailureModel(lambda, 0.0));
    std::size_t slot = 0;
    for (const LinearizeMethod lin : all_linearize_methods()) {
      for (const CkptStrategy strategy : {CkptStrategy::by_weight, CkptStrategy::by_cost}) {
        panel.series[slot++].ratios.push_back(
            heuristic_ratio(evaluator, {lin, strategy}, options.stride));
      }
    }
  }
  return panel;
}

FigurePanel strategy_panel(WorkflowKind kind, double lambda, const CostModel& cost_model,
                           const std::string& subtitle, const FigureOptions& options) {
  FigurePanel panel;
  panel.title = to_string(kind) + ": " + subtitle + " (best linearization per strategy)";
  panel.x_label = "number of tasks";
  for (const CkptStrategy strategy : all_ckpt_strategies())
    panel.series.push_back({to_string(strategy), {}});
  for (const std::size_t size : options.sizes) {
    panel.xs.push_back(static_cast<double>(size));
    const TaskGraph graph = make_instance(kind, size, cost_model, options);
    const ScheduleEvaluator evaluator(graph, FailureModel(lambda, 0.0));
    std::size_t slot = 0;
    for (const CkptStrategy strategy : all_ckpt_strategies()) {
      panel.series[slot++].ratios.push_back(
          best_linearization_ratio(evaluator, strategy, options.stride));
    }
  }
  return panel;
}

FigurePanel lambda_sweep_panel(WorkflowKind kind, std::size_t size,
                               const std::vector<double>& lambdas, const CostModel& cost_model,
                               const std::string& subtitle, const FigureOptions& options) {
  FigurePanel panel;
  panel.title = to_string(kind) + ": " + subtitle + " (best linearization per strategy)";
  panel.x_label = "lambda";
  for (const CkptStrategy strategy : all_ckpt_strategies())
    panel.series.push_back({to_string(strategy), {}});
  const TaskGraph graph = make_instance(kind, size, cost_model, options);
  for (const double lambda : lambdas) {
    panel.xs.push_back(lambda);
    const ScheduleEvaluator evaluator(graph, FailureModel(lambda, 0.0));
    std::size_t slot = 0;
    for (const CkptStrategy strategy : all_ckpt_strategies()) {
      panel.series[slot++].ratios.push_back(
          best_linearization_ratio(evaluator, strategy, options.stride));
    }
  }
  return panel;
}

}  // namespace fpsched::bench
