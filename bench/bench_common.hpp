// Shared CLI harness for the figure-reproduction benches — a thin
// adapter over the experiment registry in src/engine/.
//
// Every figure is registered declaratively in the engine
// (engine::ExperimentRegistry::global()); the per-figure binaries shrink
// to figure_main() shims that parse the shared CLI into
// engine::FigureOptions and run the named experiment through the standard
// sink stack (table + ASCII chart, plus CSV when requested). `--quick`
// shrinks the grid for smoke runs; the default reproduces the paper's
// full grid (sizes 50-700, exhaustive N-sweep). `--threads` controls the
// scenario sharding (0 = all cores); results are identical for any
// thread count. The fpsched_run driver shares this parser and adds
// record-level output (NDJSON/JSON) and process sharding on top.
#pragma once

#include <iosfwd>
#include <optional>
#include <string>

#include "engine/experiment.hpp"
#include "support/cli.hpp"
#include "workflows/generator.hpp"

namespace fpsched::bench {

using engine::FigureOptions;
using engine::PanelSpec;

/// Registers the sweep-figure extras (`--tasks`, `--downtimes`) that
/// fig7/downtime consume and the other figures ignore; figure_main and
/// fpsched_run call this before parse_figure_options so every
/// registry-driven binary exposes the same CLI.
void add_sweep_options(CliParser& cli);

/// Registers `--trials` (Monte-Carlo trials per simulated cell) for the
/// experiments flagged trial_options (robustness); figure_main and
/// fpsched_run call this so only those binaries expose the knob.
void add_trial_options(CliParser& cli);

/// Registers the shared options on `cli`, parses, and converts. Returns
/// nullopt when --help was requested. Rejects malformed values
/// (e.g. --stride 0) with a clear error; creates the --csv directory when
/// it does not exist yet (rejecting paths that exist as non-directories).
/// Reads `--tasks` / `--downtimes` only when the binary registered them
/// (add_sweep_options, or its own option of the same name).
std::optional<FigureOptions> parse_figure_options(CliParser& cli, int argc, const char* const* argv);

/// Engine configured from the shared options.
engine::ExperimentEngine make_engine(const FigureOptions& options);

/// Runs a registered experiment through the standard bench sinks: table
/// and ASCII chart on `os`, plus CSV when options.csv_dir is set.
void run_figure_experiment(std::ostream& os, const engine::Experiment& experiment,
                           const FigureOptions& options);

/// The whole main() of a per-figure binary: look up `name` in the global
/// registry, parse the shared CLI, run through the standard sinks.
/// Returns the process exit code.
int figure_main(const std::string& name, int argc, const char* const* argv);

/// Generates the paper's workflow instance for a size (cost model
/// applied). tests/engine_test.cpp replicates this convention (seed +
/// size) as its serial reference, so the engine stays pinned to it.
TaskGraph make_instance(WorkflowKind kind, std::size_t size, const CostModel& cost_model,
                        const FigureOptions& options);

}  // namespace fpsched::bench
