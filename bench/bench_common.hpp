// Shared harness for the figure-reproduction benches.
//
// Every figure binary follows the same pattern: sweep workflow sizes (or
// failure rates), run a set of heuristics per point, and report the
// paper's metric T / T_inf as a table, an ASCII chart, and optionally a
// CSV file. `--quick` shrinks the grid for smoke runs; the default
// reproduces the paper's full grid (sizes 50-700, exhaustive N-sweep).
#pragma once

#include <cstdint>
#include <iosfwd>
#include <optional>
#include <string>
#include <vector>

#include "core/evaluator.hpp"
#include "heuristics/heuristic.hpp"
#include "support/cli.hpp"
#include "workflows/generator.hpp"

namespace fpsched::bench {

struct FigureOptions {
  std::vector<std::size_t> sizes{50, 100, 200, 300, 400, 500, 600, 700};
  std::size_t stride = 1;   // N-sweep stride (1 = exhaustive, as the paper)
  std::uint64_t seed = 42;  // workflow generation seed
  double weight_cv = 0.2;
  std::string csv_dir;      // empty = no CSV output
};

/// Registers the shared options on `cli`, parses, and converts. Returns
/// nullopt when --help was requested.
std::optional<FigureOptions> parse_figure_options(CliParser& cli, int argc, const char* const* argv);

/// One plotted line: a heuristic's ratio per x-grid point.
struct RatioSeries {
  std::string name;
  std::vector<double> ratios;
};

struct FigurePanel {
  std::string title;            // e.g. "(a) CyberShake: lambda=1e-3, c=0.1w"
  std::string x_label;          // "number of tasks" or "lambda"
  std::vector<double> xs;       // grid
  std::vector<RatioSeries> series;
};

/// Prints the panel as a table + ASCII chart; writes `<csv_dir>/<slug>.csv`
/// when a CSV directory is configured.
void emit_panel(std::ostream& os, const FigurePanel& panel, const FigureOptions& options,
                const std::string& slug);

/// Ratio of one heuristic on one generated workflow (exhaustive or strided
/// N-sweep under the hood). Returns the evaluation ratio T / T_inf.
double heuristic_ratio(const ScheduleEvaluator& evaluator, const HeuristicSpec& spec,
                       std::size_t stride);

/// Best ratio over the three linearizations for a checkpoint strategy
/// (the selection rule of Figures 3 and 5-7); reports the winning
/// linearization through `chosen` when non-null.
double best_linearization_ratio(const ScheduleEvaluator& evaluator, CkptStrategy strategy,
                                std::size_t stride, LinearizeMethod* chosen = nullptr);

/// Generates the paper's workflow instance for a size (cost model applied).
TaskGraph make_instance(WorkflowKind kind, std::size_t size, const CostModel& cost_model,
                        const FigureOptions& options);

/// The "BF DF RF x CkptW CkptC" six-series panel of Figures 2 and 4.
FigurePanel linearization_panel(WorkflowKind kind, double lambda, const CostModel& cost_model,
                                const std::string& subtitle, const FigureOptions& options);

/// The "six checkpoint strategies, best linearization" panel of Figures 3,
/// 5 and 6.
FigurePanel strategy_panel(WorkflowKind kind, double lambda, const CostModel& cost_model,
                           const std::string& subtitle, const FigureOptions& options);

/// The Figure-7 panel: fixed size, ratio vs failure rate.
FigurePanel lambda_sweep_panel(WorkflowKind kind, std::size_t size,
                               const std::vector<double>& lambdas, const CostModel& cost_model,
                               const std::string& subtitle, const FigureOptions& options);

}  // namespace fpsched::bench
