// Shared harness for the figure-reproduction benches — a thin adapter
// over the experiment engine.
//
// Every figure binary declares its panels as ScenarioGrids; run_figure()
// flattens all of them into one scenario list, shards it across the
// engine's workers, and emits each panel through the configured result
// sinks (table + ASCII chart, plus CSV when requested). `--quick` shrinks
// the grid for smoke runs; the default reproduces the paper's full grid
// (sizes 50-700, exhaustive N-sweep). `--threads` controls the scenario
// sharding (0 = all cores); results are identical for any thread count.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "core/evaluator.hpp"
#include "engine/engine.hpp"
#include "engine/result_sink.hpp"
#include "engine/scenario.hpp"
#include "heuristics/heuristic.hpp"
#include "support/cli.hpp"
#include "workflows/generator.hpp"

namespace fpsched::bench {

struct FigureOptions {
  std::vector<std::size_t> sizes{50, 100, 200, 300, 400, 500, 600, 700};
  std::size_t stride = 1;   // N-sweep stride (1 = exhaustive, as the paper)
  std::uint64_t seed = 42;  // workflow generation seed
  double weight_cv = 0.2;
  std::string csv_dir;       // empty = no CSV output
  std::size_t threads = 0;   // scenario-shard workers; 0 = all cores
  /// Share materialized instances across the scenarios of a figure
  /// (--no-instance-cache disables it; results are identical either way).
  bool instance_cache = true;
};

/// Registers the shared options on `cli`, parses, and converts. Returns
/// nullopt when --help was requested. Rejects malformed values
/// (e.g. --stride 0) with a clear error.
std::optional<FigureOptions> parse_figure_options(CliParser& cli, int argc, const char* const* argv);

/// Engine configured from the shared options.
engine::ExperimentEngine make_engine(const FigureOptions& options);

/// One declared figure panel: the scenario grid plus presentation.
struct PanelSpec {
  engine::ScenarioGrid grid;
  std::string title;  // e.g. "CyberShake: lambda=0.001, c=0.1w  [paper fig. 2a]"
  std::string slug;   // CSV file stem, e.g. "fig2a_cybershake"
};

/// Runs every panel's scenarios through ONE sharded engine pass (so the
/// whole figure, not just each panel, load-balances across workers) and
/// emits the panels in order through the sinks.
void run_figure(std::ostream& os, std::span<const PanelSpec> panels, const FigureOptions& options);

/// Emits one assembled panel through the standard sinks (table, chart,
/// CSV when configured).
void emit_panel(std::ostream& os, const engine::Panel& panel, const FigureOptions& options,
                const std::string& slug);

/// Grid of Figures 2 and 4: the six BF/DF/RF x CkptW/CkptC fixed series
/// over the size axis.
engine::ScenarioGrid linearization_grid(WorkflowKind kind, double lambda,
                                        const CostModel& cost_model, const FigureOptions& options);

/// Grid of Figures 3, 5 and 6: every checkpoint strategy with its best
/// linearization, over the size axis.
engine::ScenarioGrid strategy_grid(WorkflowKind kind, double lambda, const CostModel& cost_model,
                                   const FigureOptions& options);

/// Grid of Figure 7: fixed size, best-linearization strategies over a
/// lambda axis.
engine::ScenarioGrid lambda_sweep_grid(WorkflowKind kind, std::size_t size,
                                       const std::vector<double>& lambdas,
                                       const CostModel& cost_model, const FigureOptions& options);

/// Grid of the downtime-sweep study (beyond the paper): fixed size and
/// failure rate, best-linearization strategies over a downtime axis.
engine::ScenarioGrid downtime_sweep_grid(WorkflowKind kind, std::size_t size, double lambda,
                                         const std::vector<double>& downtimes,
                                         const CostModel& cost_model,
                                         const FigureOptions& options);

/// Panel titles matching the paper's figure captions.
std::string panel_title(WorkflowKind kind, const std::string& subtitle);
std::string best_lin_panel_title(WorkflowKind kind, const std::string& subtitle);

/// Generates the paper's workflow instance for a size (cost model
/// applied). tests/engine_test.cpp replicates this convention (seed +
/// size) as its serial reference, so the engine stays pinned to it.
TaskGraph make_instance(WorkflowKind kind, std::size_t size, const CostModel& cost_model,
                        const FigureOptions& options);

}  // namespace fpsched::bench
