// Figure 7 of the paper: sensitivity to the failure rate at a fixed
// workflow size of 200 tasks (--tasks), c_i = r_i = 0.1 w_i.
//
// Panels (a) Montage, (b) Ligo, (c) CyberShake over lambda in
// [1e-4, 9.3e-4], and (d) Genome over [1e-6, 2.7e-4] (its tasks are an
// order of magnitude heavier). Expected shape: ratios grow steeply with
// lambda; CkptNvr explodes (the paper's Genome panel reaches 20x);
// the structure-aware strategies stay lowest across the whole range.
//
// Thin shim over the experiment registry; `fpsched_run fig7` is the
// same run (same code path, byte-identical output).
#include "bench_common.hpp"

int main(int argc, char** argv) { return fpsched::bench::figure_main("fig7", argc, argv); }
