// Figure 7 of the paper: sensitivity to the failure rate at a fixed
// workflow size of 200 tasks, c_i = r_i = 0.1 w_i.
//
// Panels (a) Montage, (b) Ligo, (c) CyberShake over lambda in
// [1e-4, 9.3e-4], and (d) Genome over [1e-6, 2.7e-4] (its tasks are an
// order of magnitude heavier). Expected shape: ratios grow steeply with
// lambda; CkptNvr explodes (the paper's Genome panel reaches 20x);
// the structure-aware strategies stay lowest across the whole range.
#include <iostream>

#include "bench_common.hpp"
#include "support/error.hpp"

using namespace fpsched;
using namespace fpsched::bench;

int main(int argc, char** argv) {
  CliParser cli("Reproduces Figure 7: ratio vs failure rate at 200 tasks, c = 0.1 w.");
  cli.add_option("tasks", "200", "workflow size (the paper uses 200)");
  try {
    const auto options = parse_figure_options(cli, argc, argv);
    if (!options) return 0;
    const std::size_t size = cli.get_count("tasks", 1);
    std::cout << "Figure 7 — checkpointing strategies vs failure rate (" << size
              << " tasks, c_i = r_i = 0.1 w_i)\n";

    const CostModel cost = CostModel::proportional(0.1);
    // The paper's x grids.
    const std::vector<double> common{1e-4, 2.5e-4, 3.8e-4, 5.2e-4, 6.6e-4, 8e-4, 9.3e-4};
    const std::vector<double> genome{1e-6, 5e-5, 9e-5, 1.4e-4, 1.8e-4, 2.3e-4, 2.7e-4};

    const std::string tasks = std::to_string(size) + " tasks, c=0.1w  [paper fig. 7";
    const std::vector<PanelSpec> panels{
        {lambda_sweep_grid(WorkflowKind::montage, size, common, cost, *options),
         best_lin_panel_title(WorkflowKind::montage, tasks + "a]"), "fig7a_montage"},
        {lambda_sweep_grid(WorkflowKind::ligo, size, common, cost, *options),
         best_lin_panel_title(WorkflowKind::ligo, tasks + "b]"), "fig7b_ligo"},
        {lambda_sweep_grid(WorkflowKind::cybershake, size, common, cost, *options),
         best_lin_panel_title(WorkflowKind::cybershake, tasks + "c]"), "fig7c_cybershake"},
        {lambda_sweep_grid(WorkflowKind::genome, size, genome, cost, *options),
         best_lin_panel_title(WorkflowKind::genome, tasks + "d]"), "fig7d_genome"},
    };
    run_figure(std::cout, panels, *options);
  } catch (const Error& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
  return 0;
}
