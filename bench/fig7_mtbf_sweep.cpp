// Figure 7 of the paper: sensitivity to the failure rate at a fixed
// workflow size of 200 tasks, c_i = r_i = 0.1 w_i.
//
// Panels (a) Montage, (b) Ligo, (c) CyberShake over lambda in
// [1e-4, 9.3e-4], and (d) Genome over [1e-6, 2.7e-4] (its tasks are an
// order of magnitude heavier). Expected shape: ratios grow steeply with
// lambda; CkptNvr explodes (the paper's Genome panel reaches 20x);
// the structure-aware strategies stay lowest across the whole range.
#include <iostream>

#include "bench_common.hpp"
#include "support/error.hpp"

using namespace fpsched;
using namespace fpsched::bench;

int main(int argc, char** argv) {
  CliParser cli("Reproduces Figure 7: ratio vs failure rate at 200 tasks, c = 0.1 w.");
  cli.add_option("tasks", "200", "workflow size (the paper uses 200)");
  try {
    const auto options = parse_figure_options(cli, argc, argv);
    if (!options) return 0;
    const std::size_t size = 200;
    std::cout << "Figure 7 — checkpointing strategies vs failure rate (" << size
              << " tasks, c_i = r_i = 0.1 w_i)\n";

    const CostModel cost = CostModel::proportional(0.1);
    // The paper's x grids.
    const std::vector<double> common{1e-4, 2.5e-4, 3.8e-4, 5.2e-4, 6.6e-4, 8e-4, 9.3e-4};
    const std::vector<double> genome{1e-6, 5e-5, 9e-5, 1.4e-4, 1.8e-4, 2.3e-4, 2.7e-4};

    emit_panel(std::cout,
               lambda_sweep_panel(WorkflowKind::montage, size, common, cost,
                                  "200 tasks, c=0.1w  [paper fig. 7a]", *options),
               *options, "fig7a_montage");
    emit_panel(std::cout,
               lambda_sweep_panel(WorkflowKind::ligo, size, common, cost,
                                  "200 tasks, c=0.1w  [paper fig. 7b]", *options),
               *options, "fig7b_ligo");
    emit_panel(std::cout,
               lambda_sweep_panel(WorkflowKind::cybershake, size, common, cost,
                                  "200 tasks, c=0.1w  [paper fig. 7c]", *options),
               *options, "fig7c_cybershake");
    emit_panel(std::cout,
               lambda_sweep_panel(WorkflowKind::genome, size, genome, cost,
                                  "200 tasks, c=0.1w  [paper fig. 7d]", *options),
               *options, "fig7d_genome");
  } catch (const Error& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
  return 0;
}
