// Figure 5 of the paper: checkpointing strategies with a small
// proportional checkpoint cost, c_i = r_i = 0.01 w_i.
//
// Same panel layout as Figure 3 (four workflows, best linearization per
// strategy). Expected shape: with cheaper checkpoints the ratios drop
// across the board and CkptAlws closes most of the gap; CkptNvr remains
// far off; the relative strategy ordering of Figure 3 persists.
//
// Thin shim over the experiment registry; `fpsched_run fig5` is the
// same run (same code path, byte-identical output).
#include "bench_common.hpp"

int main(int argc, char** argv) { return fpsched::bench::figure_main("fig5", argc, argv); }
