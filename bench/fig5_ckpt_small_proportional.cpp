// Figure 5 of the paper: checkpointing strategies with a small
// proportional checkpoint cost, c_i = r_i = 0.01 w_i.
//
// Same panel layout as Figure 3 (four workflows, best linearization per
// strategy). Expected shape: with cheaper checkpoints the ratios drop
// across the board and CkptAlws closes most of the gap; CkptNvr remains
// far off; the relative strategy ordering of Figure 3 persists.
#include <iostream>

#include "bench_common.hpp"
#include "support/error.hpp"
#include "support/table.hpp"

using namespace fpsched;
using namespace fpsched::bench;

int main(int argc, char** argv) {
  CliParser cli("Reproduces Figure 5: checkpointing strategies, c = 0.01 w.");
  try {
    const auto options = parse_figure_options(cli, argc, argv);
    if (!options) return 0;
    std::cout << "Figure 5 — impact of the checkpointing strategy (c_i = r_i = 0.01 w_i)\n";

    const CostModel cost = CostModel::proportional(0.01);
    const char* labels[] = {"fig5a_montage", "fig5b_ligo", "fig5c_cybershake", "fig5d_genome"};
    const WorkflowKind kinds[] = {WorkflowKind::montage, WorkflowKind::ligo,
                                  WorkflowKind::cybershake, WorkflowKind::genome};
    std::vector<PanelSpec> panels;
    for (std::size_t i = 0; i < 4; ++i) {
      const double lambda = paper_lambda(kinds[i]);
      panels.push_back(
          {strategy_grid(kinds[i], lambda, cost, *options),
           best_lin_panel_title(kinds[i], "lambda=" + format_double(lambda, 4) +
                                              ", c=0.01w  [paper fig. 5" +
                                              std::string(1, static_cast<char>('a' + i)) + "]"),
           labels[i]});
    }
    run_figure(std::cout, panels, *options);
  } catch (const Error& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
  return 0;
}
