// Ablations for the design choices DESIGN.md calls out:
//  (1) N-sweep stride — solution quality vs evaluation count trade-off
//      (the paper sweeps exhaustively; how much does subsampling cost?);
//  (2) outweight definition — the paper's direct-successor sum vs the
//      transitive-descendants variant as the DF/BF priority;
//  (3) weight variability — how the generator's weight_cv affects the
//      heuristic ranking stability.
#include <chrono>
#include <iostream>

#include "bench_common.hpp"
#include "heuristics/greedy.hpp"
#include "support/error.hpp"
#include "support/table.hpp"

using namespace fpsched;
using namespace fpsched::bench;

namespace {

void stride_ablation(std::ostream& os, const FigureOptions& options) {
  os << "\n--- Ablation 1: N-sweep stride (DF-CkptW, CyberShake, lambda=1e-3) ---\n";
  Table table({"tasks", "stride", "evaluations", "E[makespan]", "quality loss", "sweep ms"});
  for (const std::size_t size : {std::size_t{100}, std::size_t{300}, std::size_t{700}}) {
    const TaskGraph graph =
        make_instance(WorkflowKind::cybershake, size, CostModel::proportional(0.1), options);
    const ScheduleEvaluator evaluator(graph, FailureModel(1e-3, 0.0));
    double exhaustive = 0.0;
    for (const std::size_t stride : {1, 4, 16, 64}) {
      HeuristicOptions heuristic_options;
      heuristic_options.sweep.stride = stride;
      const auto start = std::chrono::steady_clock::now();
      const HeuristicResult result = run_heuristic(
          evaluator, {LinearizeMethod::depth_first, CkptStrategy::by_weight}, heuristic_options);
      const double ms = std::chrono::duration<double, std::milli>(
                            std::chrono::steady_clock::now() - start)
                            .count();
      if (stride == 1) exhaustive = result.evaluation.expected_makespan;
      table.row()
          .cell(size)
          .cell(stride)
          .cell(result.curve.size())
          .cell(result.evaluation.expected_makespan, 2)
          .cell(result.evaluation.expected_makespan / exhaustive - 1.0, 6)
          .cell(ms, 1);
    }
  }
  table.print(os);
  os << "(The budget curve is flat near its optimum: large strides trade a tiny\n"
        " quality loss for an order-of-magnitude fewer evaluations.)\n";
}

void outweight_ablation(std::ostream& os, const FigureOptions& options) {
  os << "\n--- Ablation 2: outweight definition for the DF priority ---\n";
  Table table({"workflow", "tasks", "direct (paper)", "descendants", "difference"});
  for (const WorkflowKind kind : all_workflow_kinds()) {
    for (const std::size_t size : {std::size_t{100}, std::size_t{300}}) {
      const TaskGraph graph =
          make_instance(kind, size, CostModel::proportional(0.1), options);
      const ScheduleEvaluator evaluator(graph, FailureModel(paper_lambda(kind), 0.0));
      HeuristicOptions direct;
      direct.sweep.stride = options.stride;
      direct.linearize.outweight = OutweightMode::direct;
      HeuristicOptions transitive = direct;
      transitive.linearize.outweight = OutweightMode::descendants;
      const double a =
          run_heuristic(evaluator, {LinearizeMethod::depth_first, CkptStrategy::by_weight},
                        direct)
              .evaluation.ratio;
      const double b =
          run_heuristic(evaluator, {LinearizeMethod::depth_first, CkptStrategy::by_weight},
                        transitive)
              .evaluation.ratio;
      table.row()
          .cell(to_string(kind))
          .cell(size)
          .cell(a, 4)
          .cell(b, 4)
          .cell(b - a, 5);
    }
  }
  table.print(os);
}

void weight_cv_ablation(std::ostream& os, const FigureOptions& options) {
  os << "\n--- Ablation 3: task-weight variability (Montage, 200 tasks) ---\n";
  Table table({"weight cv", "CkptNvr", "CkptAlws", "CkptW", "CkptC", "CkptPer"});
  for (const double cv : {0.0, 0.2, 0.5, 1.0}) {
    FigureOptions local = options;
    local.weight_cv = cv;
    const TaskGraph graph =
        make_instance(WorkflowKind::montage, 200, CostModel::proportional(0.1), local);
    const ScheduleEvaluator evaluator(graph, FailureModel(1e-3, 0.0));
    auto ratio = [&](CkptStrategy strategy) {
      return heuristic_ratio(evaluator, {LinearizeMethod::depth_first, strategy},
                             options.stride);
    };
    table.row()
        .cell(cv, 2)
        .cell(ratio(CkptStrategy::never), 4)
        .cell(ratio(CkptStrategy::always), 4)
        .cell(ratio(CkptStrategy::by_weight), 4)
        .cell(ratio(CkptStrategy::by_cost), 4)
        .cell(ratio(CkptStrategy::periodic), 4);
  }
  table.print(os);
  os << "(Higher weight skew widens the gap between structure-aware strategies\n"
        " and CkptPer/CkptAlws.)\n";
}

void greedy_extension(std::ostream& os, const FigureOptions& options) {
  os << "\n--- Extension: evaluator-guided greedy search vs the paper's heuristics ---\n";
  Table table({"workflow", "tasks", "best of 14", "winner", "greedy (DF order)", "improvement",
               "greedy ckpts"});
  for (const WorkflowKind kind : all_workflow_kinds()) {
    const std::size_t size = 150;
    const TaskGraph graph = make_instance(kind, size, CostModel::proportional(0.1), options);
    const ScheduleEvaluator evaluator(graph, FailureModel(paper_lambda(kind), 0.0));
    HeuristicOptions heuristic_options;
    heuristic_options.sweep.stride = options.stride;
    const auto results = run_heuristics(evaluator, all_heuristics(), heuristic_options);
    const HeuristicResult& best = results[best_result_index(results)];

    const auto order = linearize(graph.dag(), graph.weights(), LinearizeMethod::depth_first);
    const GreedyResult greedy = greedy_checkpoint_search(evaluator, order);
    table.row()
        .cell(to_string(kind))
        .cell(size)
        .cell(best.evaluation.expected_makespan, 2)
        .cell(best.spec.name())
        .cell(greedy.expected_makespan, 2)
        .cell(1.0 - greedy.expected_makespan / best.evaluation.expected_makespan, 5)
        .cell(greedy.schedule.checkpoint_count());
  }
  table.print(os);
  os << "(Greedy insert/remove over the checkpoint set, guided by the Theorem-3\n"
        " evaluator — our extension; it bounds how much headroom the paper's\n"
        " ranked strategies leave on the table for a fixed linearization.)\n";
}

}  // namespace

int main(int argc, char** argv) {
  CliParser cli("Design-choice ablations: sweep stride, outweight mode, weight variability, "
                "greedy extension.");
  try {
    const auto options = parse_figure_options(cli, argc, argv);
    if (!options) return 0;
    std::cout << "Design-choice ablations\n";
    stride_ablation(std::cout, *options);
    outweight_ablation(std::cout, *options);
    weight_cv_ablation(std::cout, *options);
    greedy_extension(std::cout, *options);
  } catch (const Error& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
  return 0;
}
