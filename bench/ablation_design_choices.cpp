// Ablations for the design choices DESIGN.md calls out:
//  (1) N-sweep stride — solution quality vs evaluation count trade-off
//      (the paper sweeps exhaustively; how much does subsampling cost?);
//  (2) outweight definition — the paper's direct-successor sum vs the
//      transitive-descendants variant as the DF/BF priority;
//  (3) weight variability — how the generator's weight_cv affects the
//      heuristic ranking stability.
//
// Every section shards its ablation cells across the experiment engine's
// workers and prints rows in cell order, so output does not depend on the
// thread count (the per-cell wall-clock column does, of course).
#include <chrono>
#include <iostream>

#include "bench_common.hpp"
#include "heuristics/greedy.hpp"
#include "support/error.hpp"
#include "support/table.hpp"

using namespace fpsched;
using namespace fpsched::bench;

namespace {

/// Worker-local heuristic options: the engine decides the inner sweep
/// threading (serial when it shards cells, all cores when it is serial).
HeuristicOptions cell_options(const engine::ExperimentEngine& eng, std::size_t stride,
                              EvaluatorWorkspace& ws) {
  HeuristicOptions options = eng.worker_options(ws);
  options.sweep.stride = stride;
  return options;
}

void stride_ablation(std::ostream& os, const FigureOptions& options,
                     const engine::ExperimentEngine& eng) {
  os << "\n--- Ablation 1: N-sweep stride (DF-CkptW, CyberShake, lambda=1e-3) ---\n";
  const std::vector<std::size_t> sizes{100, 300, 700};
  const std::vector<std::size_t> strides{1, 4, 16, 64};

  struct Cell {
    std::size_t evaluations = 0;
    double expected = 0.0;
    double ms = 0.0;
  };
  std::vector<Cell> cells(sizes.size() * strides.size());
  eng.for_each(cells.size(), [&](std::size_t i, EvaluatorWorkspace& ws) {
    const std::size_t size = sizes[i / strides.size()];
    const std::size_t stride = strides[i % strides.size()];
    const TaskGraph graph =
        make_instance(WorkflowKind::cybershake, size, CostModel::proportional(0.1), options);
    const ScheduleEvaluator evaluator(graph, FailureModel(1e-3, 0.0));
    const auto start = std::chrono::steady_clock::now();
    const HeuristicResult result =
        run_heuristic(evaluator, {LinearizeMethod::depth_first, CkptStrategy::by_weight},
                      cell_options(eng, stride, ws));
    cells[i].ms =
        std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() - start)
            .count();
    cells[i].evaluations = result.curve.size();
    cells[i].expected = result.evaluation.expected_makespan;
  });

  Table table({"tasks", "stride", "evaluations", "E[makespan]", "quality loss", "sweep ms"});
  for (std::size_t i = 0; i < cells.size(); ++i) {
    const double exhaustive = cells[(i / strides.size()) * strides.size()].expected;
    table.row()
        .cell(sizes[i / strides.size()])
        .cell(strides[i % strides.size()])
        .cell(cells[i].evaluations)
        .cell(cells[i].expected, 2)
        .cell(cells[i].expected / exhaustive - 1.0, 6)
        .cell(cells[i].ms, 1);
  }
  table.print(os);
  os << "(The budget curve is flat near its optimum: large strides trade a tiny\n"
        " quality loss for an order-of-magnitude fewer evaluations.)\n";
}

void outweight_ablation(std::ostream& os, const FigureOptions& options,
                        const engine::ExperimentEngine& eng) {
  os << "\n--- Ablation 2: outweight definition for the DF priority ---\n";
  const std::vector<std::size_t> sizes{100, 300};
  const auto kinds = all_workflow_kinds();

  struct Cell {
    double direct = 0.0;
    double descendants = 0.0;
  };
  std::vector<Cell> cells(kinds.size() * sizes.size());
  eng.for_each(cells.size(), [&](std::size_t i, EvaluatorWorkspace& ws) {
    const WorkflowKind kind = kinds[i / sizes.size()];
    const std::size_t size = sizes[i % sizes.size()];
    const TaskGraph graph = make_instance(kind, size, CostModel::proportional(0.1), options);
    const ScheduleEvaluator evaluator(graph, FailureModel(paper_lambda(kind), 0.0));
    HeuristicOptions direct = cell_options(eng, options.stride, ws);
    direct.linearize.outweight = OutweightMode::direct;
    HeuristicOptions transitive = direct;
    transitive.linearize.outweight = OutweightMode::descendants;
    cells[i].direct =
        run_heuristic(evaluator, {LinearizeMethod::depth_first, CkptStrategy::by_weight}, direct)
            .evaluation.ratio;
    cells[i].descendants =
        run_heuristic(evaluator, {LinearizeMethod::depth_first, CkptStrategy::by_weight},
                      transitive)
            .evaluation.ratio;
  });

  Table table({"workflow", "tasks", "direct (paper)", "descendants", "difference"});
  for (std::size_t i = 0; i < cells.size(); ++i) {
    table.row()
        .cell(to_string(kinds[i / sizes.size()]))
        .cell(sizes[i % sizes.size()])
        .cell(cells[i].direct, 4)
        .cell(cells[i].descendants, 4)
        .cell(cells[i].descendants - cells[i].direct, 5);
  }
  table.print(os);
}

void weight_cv_ablation(std::ostream& os, const FigureOptions& options,
                        const engine::ExperimentEngine& eng) {
  os << "\n--- Ablation 3: task-weight variability (Montage, 200 tasks) ---\n";
  const std::vector<double> cvs{0.0, 0.2, 0.5, 1.0};
  const std::vector<CkptStrategy> strategies{CkptStrategy::never, CkptStrategy::always,
                                             CkptStrategy::by_weight, CkptStrategy::by_cost,
                                             CkptStrategy::periodic};

  std::vector<std::vector<double>> ratios(cvs.size(), std::vector<double>(strategies.size()));
  eng.for_each(cvs.size(), [&](std::size_t i, EvaluatorWorkspace& ws) {
    FigureOptions local = options;
    local.weight_cv = cvs[i];
    const TaskGraph graph =
        make_instance(WorkflowKind::montage, 200, CostModel::proportional(0.1), local);
    const ScheduleEvaluator evaluator(graph, FailureModel(1e-3, 0.0));
    for (std::size_t s = 0; s < strategies.size(); ++s) {
      ratios[i][s] = run_heuristic(evaluator, {LinearizeMethod::depth_first, strategies[s]},
                                   cell_options(eng, options.stride, ws))
                         .evaluation.ratio;
    }
  });

  Table table({"weight cv", "CkptNvr", "CkptAlws", "CkptW", "CkptC", "CkptPer"});
  for (std::size_t i = 0; i < cvs.size(); ++i) {
    table.row()
        .cell(cvs[i], 2)
        .cell(ratios[i][0], 4)
        .cell(ratios[i][1], 4)
        .cell(ratios[i][2], 4)
        .cell(ratios[i][3], 4)
        .cell(ratios[i][4], 4);
  }
  table.print(os);
  os << "(Higher weight skew widens the gap between structure-aware strategies\n"
        " and CkptPer/CkptAlws.)\n";
}

void greedy_extension(std::ostream& os, const FigureOptions& options,
                      const engine::ExperimentEngine& eng) {
  os << "\n--- Extension: evaluator-guided greedy search vs the paper's heuristics ---\n";
  const auto kinds = all_workflow_kinds();
  const std::size_t size = 150;

  struct Cell {
    double best14 = 0.0;
    std::string winner;
    double greedy = 0.0;
    std::size_t greedy_ckpts = 0;
  };
  std::vector<Cell> cells(kinds.size());
  eng.for_each(cells.size(), [&](std::size_t i, EvaluatorWorkspace& ws) {
    const WorkflowKind kind = kinds[i];
    const TaskGraph graph = make_instance(kind, size, CostModel::proportional(0.1), options);
    const ScheduleEvaluator evaluator(graph, FailureModel(paper_lambda(kind), 0.0));
    const auto results =
        run_heuristics(evaluator, all_heuristics(), cell_options(eng, options.stride, ws));
    const HeuristicResult& best = results[best_result_index(results)];
    cells[i].best14 = best.evaluation.expected_makespan;
    cells[i].winner = best.spec.name();

    const auto order = linearize(graph.dag(), graph.weights(), LinearizeMethod::depth_first);
    const GreedyResult greedy =
        greedy_checkpoint_search(evaluator, order, {.threads = eng.inner_threads()});
    cells[i].greedy = greedy.expected_makespan;
    cells[i].greedy_ckpts = greedy.schedule.checkpoint_count();
  });

  Table table({"workflow", "tasks", "best of 14", "winner", "greedy (DF order)", "improvement",
               "greedy ckpts"});
  for (std::size_t i = 0; i < cells.size(); ++i) {
    table.row()
        .cell(to_string(kinds[i]))
        .cell(size)
        .cell(cells[i].best14, 2)
        .cell(cells[i].winner)
        .cell(cells[i].greedy, 2)
        .cell(1.0 - cells[i].greedy / cells[i].best14, 5)
        .cell(cells[i].greedy_ckpts);
  }
  table.print(os);
  os << "(Greedy insert/remove over the checkpoint set, guided by the Theorem-3\n"
        " evaluator — our extension; it bounds how much headroom the paper's\n"
        " ranked strategies leave on the table for a fixed linearization.)\n";
}

}  // namespace

int main(int argc, char** argv) {
  CliParser cli("Design-choice ablations: sweep stride, outweight mode, weight variability, "
                "greedy extension.");
  try {
    const auto options = parse_figure_options(cli, argc, argv);
    if (!options) return 0;
    const engine::ExperimentEngine eng = make_engine(*options);
    std::cout << "Design-choice ablations\n";
    stride_ablation(std::cout, *options, eng);
    outweight_ablation(std::cout, *options, eng);
    weight_cv_ablation(std::cout, *options, eng);
    greedy_extension(std::cout, *options, eng);
  } catch (const Error& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
  return 0;
}
