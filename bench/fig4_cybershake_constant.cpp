// Figure 4 of the paper: impact of the linearization strategy on
// CyberShake when the checkpoint cost is constant rather than
// proportional.
//
// Panels (a) c_i = 10 s, (b) c_i = 5 s, (c) c_i = 0.01 w_i, all at
// lambda = 1e-3, with the six BF/DF/RF x CkptW/CkptC series. Expected
// shape: with a constant checkpoint cost, CkptW catches up with CkptC
// (the cost ranking no longer favours small tasks).
//
// Thin shim over the experiment registry; `fpsched_run fig4` is the
// same run (same code path, byte-identical output).
#include "bench_common.hpp"

int main(int argc, char** argv) { return fpsched::bench::figure_main("fig4", argc, argv); }
