// Figure 4 of the paper: impact of the linearization strategy on
// CyberShake when the checkpoint cost is constant rather than
// proportional.
//
// Panels (a) c_i = 10 s, (b) c_i = 5 s, (c) c_i = 0.01 w_i, all at
// lambda = 1e-3, with the six BF/DF/RF x CkptW/CkptC series. Expected
// shape: with a constant checkpoint cost, CkptW catches up with CkptC
// (the cost ranking no longer favours small tasks).
#include <iostream>

#include "bench_common.hpp"
#include "support/error.hpp"

using namespace fpsched;
using namespace fpsched::bench;

int main(int argc, char** argv) {
  CliParser cli("Reproduces Figure 4: CyberShake with constant checkpoint costs.");
  try {
    const auto options = parse_figure_options(cli, argc, argv);
    if (!options) return 0;
    std::cout << "Figure 4 — CyberShake, linearization impact under constant checkpoints\n";

    const WorkflowKind kind = WorkflowKind::cybershake;
    const std::vector<PanelSpec> panels{
        {linearization_grid(kind, 1e-3, CostModel::constant(10.0), *options),
         panel_title(kind, "lambda=0.001, c=10s  [paper fig. 4a]"), "fig4a_cybershake_c10"},
        {linearization_grid(kind, 1e-3, CostModel::constant(5.0), *options),
         panel_title(kind, "lambda=0.001, c=5s  [paper fig. 4b]"), "fig4b_cybershake_c5"},
        {linearization_grid(kind, 1e-3, CostModel::proportional(0.01), *options),
         panel_title(kind, "lambda=0.001, c=0.01w  [paper fig. 4c]"), "fig4c_cybershake_c001w"},
    };
    run_figure(std::cout, panels, *options);
    std::cout << "\nPaper's observation to compare against: with a constant checkpoint cost,\n"
                 "CkptW behaves as well as CkptC on CyberShake (cf. fig. 2a where the\n"
                 "proportional cost separated them).\n";
  } catch (const Error& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
  return 0;
}
