// Section-4 theory validation harness (no figure in the paper, but every
// theorem is exercised numerically):
//  * Theorem 1 — fork decision vs exhaustive evaluation;
//  * Lemma 2 / Corollary 1 — join g-ordering and equal-cost solver vs
//    brute force;
//  * Toueg-Babaoglu chain DP vs brute force;
//  * Theorem 2 — SUBSET-SUM gadget threshold behaviour;
//  * Theorem 3 — optimized evaluator vs the literal Algorithm-1
//    transcription and vs Monte-Carlo simulation.
#include <iostream>

#include "bench_common.hpp"
#include "core/evaluator_naive.hpp"
#include "core/subset_sum.hpp"
#include "core/theory_chain.hpp"
#include "core/theory_fork.hpp"
#include "core/theory_join.hpp"
#include "sim/trial_runner.hpp"
#include "support/error.hpp"
#include "support/rng.hpp"
#include "support/stats.hpp"
#include "support/table.hpp"
#include "workflows/synthetic.hpp"

using namespace fpsched;

namespace {

void fork_section(std::ostream& os, Rng& rng) {
  os << "\n--- Theorem 1: fork graphs ---\n";
  Table table({"sinks", "lambda", "E[ckpt src]", "E[no ckpt]", "decision", "agrees w/ evaluator"});
  for (int instance = 0; instance < 5; ++instance) {
    const std::size_t sinks = 3 + instance;
    std::vector<double> sink_weights(sinks);
    for (double& w : sink_weights) w = rng.uniform(5.0, 60.0);
    TaskGraph graph = make_fork(rng.uniform(20.0, 120.0), sink_weights);
    graph.apply_cost_model(CostModel::proportional(0.15));
    const FailureModel model(rng.uniform(0.002, 0.02), 0.0);
    const ForkAnalysis analysis = analyze_fork(graph, model);
    const Schedule schedule = optimal_fork_schedule(graph, model);
    const double evaluated =
        ScheduleEvaluator(graph, model).evaluate(schedule).expected_makespan;
    table.row()
        .cell(sinks)
        .cell(model.lambda(), 4)
        .cell(analysis.expected_with_checkpoint, 2)
        .cell(analysis.expected_without_checkpoint, 2)
        .cell(std::string(analysis.checkpoint_source ? "checkpoint" : "skip"))
        .cell(std::string(relative_difference(evaluated, analysis.optimal_expected_makespan) < 1e-9
                              ? "yes"
                              : "NO"));
  }
  table.print(os);
}

void join_section(std::ostream& os, Rng& rng) {
  os << "\n--- Lemma 2 / Corollary 1: join graphs (uniform costs) ---\n";
  Table table({"sources", "lambda", "Corollary-1 E[T]", "brute-force E[T]", "ckpts", "match"});
  for (int instance = 0; instance < 5; ++instance) {
    const std::size_t sources = 6 + instance;
    std::vector<double> weights(sources);
    for (double& w : weights) w = rng.uniform(5.0, 80.0);
    TaskGraph graph = make_join(weights, rng.uniform(1.0, 15.0));
    graph.apply_cost_model(CostModel::constant(rng.uniform(1.0, 5.0)));
    const FailureModel model(rng.uniform(0.003, 0.02), 0.0);
    const JoinSolution fast = solve_join_equal_costs(graph, model);
    const JoinSolution exact = solve_join_bruteforce(graph, model);
    table.row()
        .cell(sources)
        .cell(model.lambda(), 4)
        .cell(fast.expected_makespan, 2)
        .cell(exact.expected_makespan, 2)
        .cell(fast.checkpointed_sources.size())
        .cell(std::string(
            relative_difference(fast.expected_makespan, exact.expected_makespan) < 1e-9 ? "yes"
                                                                                        : "NO"));
  }
  table.print(os);
}

void chain_section(std::ostream& os, Rng& rng) {
  os << "\n--- Toueg-Babaoglu chain dynamic program ---\n";
  Table table({"tasks", "lambda", "DP E[T]", "brute-force E[T]", "DP ckpts", "match"});
  for (int instance = 0; instance < 5; ++instance) {
    const std::size_t n = 8 + instance * 2;
    std::vector<double> weights(n);
    for (double& w : weights) w = rng.uniform(5.0, 70.0);
    TaskGraph graph = make_chain(weights);
    graph.apply_cost_model(CostModel::proportional(rng.uniform(0.05, 0.3)));
    const FailureModel model(rng.uniform(0.002, 0.03), 0.0);
    const ChainSolution dp = solve_chain_optimal(graph, model);
    const ChainSolution exact = solve_chain_bruteforce(graph, model);
    table.row()
        .cell(n)
        .cell(model.lambda(), 4)
        .cell(dp.expected_makespan, 2)
        .cell(exact.expected_makespan, 2)
        .cell(dp.checkpoint_positions.size())
        .cell(std::string(
            relative_difference(dp.expected_makespan, exact.expected_makespan) < 1e-9 ? "yes"
                                                                                      : "NO"));
  }
  table.print(os);
}

void subset_sum_section(std::ostream& os) {
  os << "\n--- Theorem 2: SUBSET-SUM gadget ---\n";
  Table table({"instance", "target", "solvable (DP)", "gadget reaches t_min"});
  const std::vector<std::pair<SubsetSumInstance, std::string>> instances = {
      {{{3, 5, 7}, 8}, "{3,5,7}"},    {{{3, 5, 7}, 9}, "{3,5,7}"},
      {{{2, 4, 6, 8}, 10}, "{2,4,6,8}"}, {{{2, 4, 6, 8}, 11}, "{2,4,6,8}"},
      {{{1, 2, 5, 9}, 16}, "{1,2,5,9}"}, {{{5, 5, 5}, 7}, "{5,5,5}"},
  };
  for (const auto& [instance, label] : instances) {
    const bool solvable = subset_sum_solvable(instance);
    const bool reached = gadget_reaches_threshold(reduce_subset_sum(instance));
    table.row()
        .cell(label)
        .cell(static_cast<std::size_t>(instance.target))
        .cell(std::string(solvable ? "yes" : "no"))
        .cell(std::string(reached ? "yes" : "no"));
  }
  table.print(os);
  os << "(Theorem 2 requires the two right columns to be identical.)\n";
}

void evaluator_section(std::ostream& os, Rng& rng) {
  os << "\n--- Theorem 3: evaluator vs Algorithm 1 vs Monte-Carlo ---\n";
  Table table({"tasks", "lambda", "optimized", "Algorithm 1", "MC mean +/- CI95", "consistent"});
  for (int instance = 0; instance < 4; ++instance) {
    TaskGraph graph = make_layered_random({.task_count = 14 + 6u * instance,
                                           .layer_count = 4,
                                           .mean_weight = 25.0,
                                           .seed = rng()});
    graph.apply_cost_model(CostModel::proportional(0.1));
    const FailureModel model(rng.uniform(0.002, 0.01), 1.0);
    Schedule schedule = make_schedule(linearize(graph.dag(), graph.weights(),
                                                LinearizeMethod::depth_first));
    for (VertexId v = 0; v < graph.task_count(); v += 3) schedule.checkpointed[v] = 1;

    const double fast = ScheduleEvaluator(graph, model).evaluate(schedule).expected_makespan;
    const double naive = evaluate_reference(graph, model, schedule);
    const MonteCarloSummary mc =
        run_trials(FaultSimulator(graph, model, schedule), {.trials = 30000, .seed = rng()});
    table.row()
        .cell(graph.task_count())
        .cell(model.lambda(), 4)
        .cell(fast, 3)
        .cell(naive, 3)
        .cell(format_double(mc.mean_makespan(), 2) + " +/- " + format_double(mc.ci95(), 2))
        .cell(std::string(relative_difference(fast, naive) < 1e-9 &&
                                  mc.consistent_with(fast, 3.0)
                              ? "yes"
                              : "NO"));
  }
  table.print(os);
}

}  // namespace

int main(int argc, char** argv) {
  CliParser cli("Validates every Section-4 theoretical result numerically.");
  cli.add_option("seed", "2025", "randomized-instance seed");
  try {
    if (!cli.parse(argc, argv)) return 0;
    Rng rng(static_cast<std::uint64_t>(cli.get_int("seed")));
    std::cout << "Section 4 theory validation\n";
    fork_section(std::cout, rng);
    join_section(std::cout, rng);
    chain_section(std::cout, rng);
    subset_sum_section(std::cout);
    evaluator_section(std::cout, rng);
  } catch (const Error& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
  return 0;
}
