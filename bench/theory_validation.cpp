// Section-4 theory validation harness (no figure in the paper, but every
// theorem is exercised numerically):
//  * Theorem 1 — fork decision vs exhaustive evaluation;
//  * Lemma 2 / Corollary 1 — join g-ordering and equal-cost solver vs
//    brute force;
//  * Toueg-Babaoglu chain DP vs brute force;
//  * Theorem 2 — SUBSET-SUM gadget threshold behaviour;
//  * Theorem 3 — optimized evaluator vs the literal Algorithm-1
//    transcription and vs Monte-Carlo simulation.
//
// Instance parameters are drawn serially (fixed RNG order), then the
// expensive validations are sharded across the experiment engine's
// workers; rows print in instance order, so output is independent of the
// thread count.
#include <iostream>

#include "core/evaluator_naive.hpp"
#include "core/subset_sum.hpp"
#include "core/theory_chain.hpp"
#include "core/theory_fork.hpp"
#include "core/theory_join.hpp"
#include "engine/engine.hpp"
#include "sim/trial_runner.hpp"
#include "support/cli.hpp"
#include "support/error.hpp"
#include "support/rng.hpp"
#include "support/stats.hpp"
#include "support/table.hpp"
#include "workflows/synthetic.hpp"

using namespace fpsched;

namespace {

void fork_section(std::ostream& os, Rng& rng, const engine::ExperimentEngine& eng) {
  os << "\n--- Theorem 1: fork graphs ---\n";
  struct Instance {
    std::vector<double> sink_weights;
    double source_weight = 0.0;
    double lambda = 0.0;
  };
  std::vector<Instance> instances(5);
  for (int i = 0; i < 5; ++i) {
    Instance& instance = instances[i];
    instance.sink_weights.resize(3 + static_cast<std::size_t>(i));
    for (double& w : instance.sink_weights) w = rng.uniform(5.0, 60.0);
    instance.source_weight = rng.uniform(20.0, 120.0);
    instance.lambda = rng.uniform(0.002, 0.02);
  }

  struct Row {
    ForkAnalysis analysis;
    double evaluated = 0.0;
  };
  std::vector<Row> rows(instances.size());
  eng.for_each(instances.size(), [&](std::size_t i, EvaluatorWorkspace&) {
    const Instance& instance = instances[i];
    TaskGraph graph = make_fork(instance.source_weight, instance.sink_weights);
    graph.apply_cost_model(CostModel::proportional(0.15));
    const FailureModel model(instance.lambda, 0.0);
    rows[i].analysis = analyze_fork(graph, model);
    const Schedule schedule = optimal_fork_schedule(graph, model);
    rows[i].evaluated = ScheduleEvaluator(graph, model).evaluate(schedule).expected_makespan;
  });

  Table table({"sinks", "lambda", "E[ckpt src]", "E[no ckpt]", "decision", "agrees w/ evaluator"});
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const Row& row = rows[i];
    table.row()
        .cell(instances[i].sink_weights.size())
        .cell(instances[i].lambda, 4)
        .cell(row.analysis.expected_with_checkpoint, 2)
        .cell(row.analysis.expected_without_checkpoint, 2)
        .cell(std::string(row.analysis.checkpoint_source ? "checkpoint" : "skip"))
        .cell(std::string(
            relative_difference(row.evaluated, row.analysis.optimal_expected_makespan) < 1e-9
                ? "yes"
                : "NO"));
  }
  table.print(os);
}

void join_section(std::ostream& os, Rng& rng, const engine::ExperimentEngine& eng) {
  os << "\n--- Lemma 2 / Corollary 1: join graphs (uniform costs) ---\n";
  struct Instance {
    std::vector<double> weights;
    double sink_weight = 0.0;
    double cost = 0.0;
    double lambda = 0.0;
  };
  std::vector<Instance> instances(5);
  for (int i = 0; i < 5; ++i) {
    Instance& instance = instances[i];
    instance.weights.resize(6 + static_cast<std::size_t>(i));
    for (double& w : instance.weights) w = rng.uniform(5.0, 80.0);
    instance.sink_weight = rng.uniform(1.0, 15.0);
    instance.cost = rng.uniform(1.0, 5.0);
    instance.lambda = rng.uniform(0.003, 0.02);
  }

  struct Row {
    JoinSolution fast;
    JoinSolution exact;
  };
  std::vector<Row> rows(instances.size());
  eng.for_each(instances.size(), [&](std::size_t i, EvaluatorWorkspace&) {
    const Instance& instance = instances[i];
    TaskGraph graph = make_join(instance.weights, instance.sink_weight);
    graph.apply_cost_model(CostModel::constant(instance.cost));
    const FailureModel model(instance.lambda, 0.0);
    rows[i].fast = solve_join_equal_costs(graph, model);
    rows[i].exact = solve_join_bruteforce(graph, model);
  });

  Table table({"sources", "lambda", "Corollary-1 E[T]", "brute-force E[T]", "ckpts", "match"});
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const Row& row = rows[i];
    table.row()
        .cell(instances[i].weights.size())
        .cell(instances[i].lambda, 4)
        .cell(row.fast.expected_makespan, 2)
        .cell(row.exact.expected_makespan, 2)
        .cell(row.fast.checkpointed_sources.size())
        .cell(std::string(
            relative_difference(row.fast.expected_makespan, row.exact.expected_makespan) < 1e-9
                ? "yes"
                : "NO"));
  }
  table.print(os);
}

void chain_section(std::ostream& os, Rng& rng, const engine::ExperimentEngine& eng) {
  os << "\n--- Toueg-Babaoglu chain dynamic program ---\n";
  struct Instance {
    std::vector<double> weights;
    double cost_factor = 0.0;
    double lambda = 0.0;
  };
  std::vector<Instance> instances(5);
  for (int i = 0; i < 5; ++i) {
    Instance& instance = instances[i];
    instance.weights.resize(8 + static_cast<std::size_t>(i) * 2);
    for (double& w : instance.weights) w = rng.uniform(5.0, 70.0);
    instance.cost_factor = rng.uniform(0.05, 0.3);
    instance.lambda = rng.uniform(0.002, 0.03);
  }

  struct Row {
    ChainSolution dp;
    ChainSolution exact;
  };
  std::vector<Row> rows(instances.size());
  eng.for_each(instances.size(), [&](std::size_t i, EvaluatorWorkspace&) {
    const Instance& instance = instances[i];
    TaskGraph graph = make_chain(instance.weights);
    graph.apply_cost_model(CostModel::proportional(instance.cost_factor));
    const FailureModel model(instance.lambda, 0.0);
    rows[i].dp = solve_chain_optimal(graph, model);
    rows[i].exact = solve_chain_bruteforce(graph, model);
  });

  Table table({"tasks", "lambda", "DP E[T]", "brute-force E[T]", "DP ckpts", "match"});
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const Row& row = rows[i];
    table.row()
        .cell(instances[i].weights.size())
        .cell(instances[i].lambda, 4)
        .cell(row.dp.expected_makespan, 2)
        .cell(row.exact.expected_makespan, 2)
        .cell(row.dp.checkpoint_positions.size())
        .cell(std::string(
            relative_difference(row.dp.expected_makespan, row.exact.expected_makespan) < 1e-9
                ? "yes"
                : "NO"));
  }
  table.print(os);
}

void subset_sum_section(std::ostream& os) {
  os << "\n--- Theorem 2: SUBSET-SUM gadget ---\n";
  Table table({"instance", "target", "solvable (DP)", "gadget reaches t_min"});
  const std::vector<std::pair<SubsetSumInstance, std::string>> instances = {
      {{{3, 5, 7}, 8}, "{3,5,7}"},    {{{3, 5, 7}, 9}, "{3,5,7}"},
      {{{2, 4, 6, 8}, 10}, "{2,4,6,8}"}, {{{2, 4, 6, 8}, 11}, "{2,4,6,8}"},
      {{{1, 2, 5, 9}, 16}, "{1,2,5,9}"}, {{{5, 5, 5}, 7}, "{5,5,5}"},
  };
  for (const auto& [instance, label] : instances) {
    const bool solvable = subset_sum_solvable(instance);
    const bool reached = gadget_reaches_threshold(reduce_subset_sum(instance));
    table.row()
        .cell(label)
        .cell(static_cast<std::size_t>(instance.target))
        .cell(std::string(solvable ? "yes" : "no"))
        .cell(std::string(reached ? "yes" : "no"));
  }
  table.print(os);
  os << "(Theorem 2 requires the two right columns to be identical.)\n";
}

void evaluator_section(std::ostream& os, Rng& rng, const engine::ExperimentEngine& eng) {
  os << "\n--- Theorem 3: evaluator vs Algorithm 1 vs Monte-Carlo ---\n";
  struct Instance {
    std::size_t task_count = 0;
    std::uint64_t graph_seed = 0;
    double lambda = 0.0;
    std::uint64_t mc_seed = 0;
  };
  std::vector<Instance> instances(4);
  for (int i = 0; i < 4; ++i) {
    Instance& instance = instances[i];
    instance.task_count = 14 + 6u * static_cast<std::size_t>(i);
    instance.graph_seed = rng();
    instance.lambda = rng.uniform(0.002, 0.01);
    instance.mc_seed = rng();
  }

  struct Row {
    double fast = 0.0;
    double naive = 0.0;
    MonteCarloSummary mc;
  };
  std::vector<Row> rows(instances.size());
  eng.for_each(instances.size(), [&](std::size_t i, EvaluatorWorkspace& ws) {
    const Instance& instance = instances[i];
    TaskGraph graph = make_layered_random({.task_count = instance.task_count,
                                           .layer_count = 4,
                                           .mean_weight = 25.0,
                                           .seed = instance.graph_seed});
    graph.apply_cost_model(CostModel::proportional(0.1));
    const FailureModel model(instance.lambda, 1.0);
    Schedule schedule =
        make_schedule(linearize(graph.dag(), graph.weights(), LinearizeMethod::depth_first));
    for (VertexId v = 0; v < graph.task_count(); v += 3) schedule.checkpointed[v] = 1;

    rows[i].fast =
        ScheduleEvaluator(graph, model).evaluate(schedule, ws).expected_makespan;
    rows[i].naive = evaluate_reference(graph, model, schedule);
    // Serial trials inside sharded workers: nested pools oversubscribe
    // and make the stat-merge order thread-dependent.
    rows[i].mc = run_trials(FaultSimulator(graph, model, schedule),
                            {.trials = 30000, .seed = instance.mc_seed,
                             .threads = eng.inner_threads()});
  });

  Table table({"tasks", "lambda", "optimized", "Algorithm 1", "MC mean +/- CI95", "consistent"});
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const Row& row = rows[i];
    table.row()
        .cell(instances[i].task_count)
        .cell(instances[i].lambda, 4)
        .cell(row.fast, 3)
        .cell(row.naive, 3)
        .cell(format_double(row.mc.mean_makespan(), 2) + " +/- " + format_double(row.mc.ci95(), 2))
        .cell(std::string(relative_difference(row.fast, row.naive) < 1e-9 &&
                                  row.mc.consistent_with(row.fast, 3.0)
                              ? "yes"
                              : "NO"));
  }
  table.print(os);
}

}  // namespace

int main(int argc, char** argv) {
  CliParser cli("Validates every Section-4 theoretical result numerically.");
  cli.add_option("seed", "2025", "randomized-instance seed");
  cli.add_option("threads", "0", "instance-shard worker threads (0 = all cores)");
  try {
    if (!cli.parse(argc, argv)) return 0;
    Rng rng(static_cast<std::uint64_t>(cli.get_int("seed")));
    const engine::ExperimentEngine eng({.threads = cli.get_count("threads")});
    std::cout << "Section 4 theory validation\n";
    fork_section(std::cout, rng, eng);
    join_section(std::cout, rng, eng);
    chain_section(std::cout, rng, eng);
    subset_sum_section(std::cout);
    evaluator_section(std::cout, rng, eng);
  } catch (const Error& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
  return 0;
}
