// Section-4 theory validation, registered as the "theory" experiment:
// a Theorem-3 best-linearization grid over all four workflow kinds at
// sizes small enough for the literal Algorithm-1 transcription to replay
// every cell (tests/experiment_test.cpp does, at 1e-9). Running through
// the registry makes the validation shardable (--shard I/N) and servable
// (fpsched_serve ?experiment=theory), byte-identical to `fpsched_run
// theory`.
//
// The Theorem-1 / Lemma-2 / chain-DP / SUBSET-SUM sections this binary
// used to print now live as assertions in the unit suite (see the
// experiment's closing notes for the file-by-file map) — they validate on
// every test run instead of only when someone reads the table.
#include "bench_common.hpp"

int main(int argc, char** argv) { return fpsched::bench::figure_main("theory", argc, argv); }
