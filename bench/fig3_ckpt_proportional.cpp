// Figure 3 of the paper: impact of the checkpointing strategy with
// proportional costs c_i = r_i = 0.1 w_i.
//
// Panels (a) Montage, (b) Ligo, (c) CyberShake at lambda = 1e-3 and
// (d) Genome at lambda = 1e-4. Every checkpointing strategy is shown with
// its best linearization. Expected shape: CkptW / CkptC / CkptD at the
// bottom, CkptPer poor (sometimes worse than the baselines), CkptNvr
// clearly worst at these failure rates.
#include <iostream>

#include "bench_common.hpp"
#include "support/error.hpp"
#include "support/table.hpp"

using namespace fpsched;
using namespace fpsched::bench;

int main(int argc, char** argv) {
  CliParser cli("Reproduces Figure 3: checkpointing strategies, c = 0.1 w.");
  try {
    const auto options = parse_figure_options(cli, argc, argv);
    if (!options) return 0;
    std::cout << "Figure 3 — impact of the checkpointing strategy (c_i = r_i = 0.1 w_i)\n";

    const CostModel cost = CostModel::proportional(0.1);
    const char* labels[] = {"fig3a_montage", "fig3b_ligo", "fig3c_cybershake", "fig3d_genome"};
    const WorkflowKind kinds[] = {WorkflowKind::montage, WorkflowKind::ligo,
                                  WorkflowKind::cybershake, WorkflowKind::genome};
    std::vector<PanelSpec> panels;
    for (std::size_t i = 0; i < 4; ++i) {
      const double lambda = paper_lambda(kinds[i]);
      panels.push_back(
          {strategy_grid(kinds[i], lambda, cost, *options),
           best_lin_panel_title(kinds[i], "lambda=" + format_double(lambda, 4) +
                                              ", c=0.1w  [paper fig. 3" +
                                              std::string(1, static_cast<char>('a' + i)) + "]"),
           labels[i]});
    }
    run_figure(std::cout, panels, *options);
    std::cout << "\nPaper's observations to compare against: CkptW best on Montage, Ligo and\n"
                 "Genome; CkptC best on CyberShake; CkptPer ignores the DAG structure and\n"
                 "trails the structure-aware strategies; all strategies beat CkptNvr.\n";
  } catch (const Error& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
  return 0;
}
