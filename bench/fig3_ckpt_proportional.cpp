// Figure 3 of the paper: impact of the checkpointing strategy with
// proportional costs c_i = r_i = 0.1 w_i.
//
// Panels (a) Montage, (b) Ligo, (c) CyberShake at lambda = 1e-3 and
// (d) Genome at lambda = 1e-4. Every checkpointing strategy is shown with
// its best linearization. Expected shape: CkptW / CkptC / CkptD at the
// bottom, CkptPer poor (sometimes worse than the baselines), CkptNvr
// clearly worst at these failure rates.
//
// Thin shim over the experiment registry; `fpsched_run fig3` is the
// same run (same code path, byte-identical output).
#include "bench_common.hpp"

int main(int argc, char** argv) { return fpsched::bench::figure_main("fig3", argc, argv); }
