// Downtime sensitivity study (beyond the paper's figures).
//
// The platform model of Section 3 charges a constant downtime D after
// every failure, but the paper's experiments keep D = 0. This bench
// sweeps D at a fixed workflow size and the paper's per-workflow failure
// rates, c_i = r_i = 0.1 w_i, for every checkpointing strategy at its
// best linearization — exercising the engine's downtime grid axis.
// Expected shape: ratios grow linearly in D (Eq. (1) scales each
// failure's cost by 1/lambda + D), with the steepest growth for the
// strategies that fail most often per unit of work (CkptNvr).
#include <iostream>

#include "bench_common.hpp"
#include "support/error.hpp"
#include "support/table.hpp"

using namespace fpsched;
using namespace fpsched::bench;

int main(int argc, char** argv) {
  CliParser cli("Downtime sweep: ratio vs per-failure downtime D at a fixed size, c = 0.1 w.");
  cli.add_option("tasks", "200", "workflow size");
  cli.add_option("downtimes", "0,60,300,900,3600", "downtime grid (seconds)");
  try {
    const auto options = parse_figure_options(cli, argc, argv);
    if (!options) return 0;
    const std::size_t size = cli.get_count("tasks", 1);
    const std::vector<double> downtimes = cli.get_double_list("downtimes");
    for (const double d : downtimes) {
      if (d < 0.0) throw InvalidArgument("option --downtimes: downtimes must be >= 0");
    }
    std::cout << "Downtime sweep — checkpointing strategies vs downtime D (" << size
              << " tasks, paper lambdas, c_i = r_i = 0.1 w_i)\n";

    const CostModel cost = CostModel::proportional(0.1);
    const auto panel = [&](WorkflowKind kind, const std::string& slug) {
      const double lambda = paper_lambda(kind);
      return PanelSpec{
          downtime_sweep_grid(kind, size, lambda, downtimes, cost, *options),
          best_lin_panel_title(kind, std::to_string(size) + " tasks, lambda=" +
                                         format_double(lambda, 4) + ", c=0.1w"),
          slug};
    };
    const std::vector<PanelSpec> panels{
        panel(WorkflowKind::montage, "downtime_montage"),
        panel(WorkflowKind::cybershake, "downtime_cybershake"),
        panel(WorkflowKind::genome, "downtime_genome"),
    };
    run_figure(std::cout, panels, *options);
    std::cout << "\nEq. (1) charges every failure 1/lambda + D, so E[makespan] is affine in D\n"
                 "with slope lambda * E[#failures]; strategies that recover less work per\n"
                 "failure flatten the curve.\n";
  } catch (const Error& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
  return 0;
}
