// Downtime sensitivity study (beyond the paper's figures).
//
// The platform model of Section 3 charges a constant downtime D after
// every failure, but the paper's experiments keep D = 0. This bench
// sweeps D (--downtimes) at a fixed workflow size (--tasks) and the
// paper's per-workflow failure rates, c_i = r_i = 0.1 w_i, for every
// checkpointing strategy at its best linearization — exercising the
// engine's downtime grid axis. Expected shape: ratios grow linearly in D
// (Eq. (1) scales each failure's cost by 1/lambda + D), with the
// steepest growth for the strategies that fail most often per unit of
// work (CkptNvr).
//
// Thin shim over the experiment registry; `fpsched_run downtime` is the
// same run (same code path, byte-identical output).
#include "bench_common.hpp"

int main(int argc, char** argv) { return fpsched::bench::figure_main("downtime", argc, argv); }
