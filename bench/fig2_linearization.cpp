// Figure 2 of the paper: impact of the linearization strategy.
//
// Panels (a) CyberShake, (b) Ligo (lambda = 1e-3) and (c) Genome
// (lambda = 1e-4), all with c_i = r_i = 0.1 w_i, comparing BF / DF / RF
// for the two leading checkpointing strategies CkptW and CkptC over
// 50-700 tasks. Expected shape: DF lowest nearly everywhere; RF beats BF
// on Ligo.
#include <iostream>

#include "bench_common.hpp"
#include "support/error.hpp"

using namespace fpsched;
using namespace fpsched::bench;

int main(int argc, char** argv) {
  CliParser cli("Reproduces Figure 2: linearization strategies (CkptW/CkptC, c = 0.1 w).");
  try {
    const auto options = parse_figure_options(cli, argc, argv);
    if (!options) return 0;
    std::cout << "Figure 2 — impact of the linearization strategy (c_i = r_i = 0.1 w_i)\n";

    const CostModel cost = CostModel::proportional(0.1);
    const std::vector<PanelSpec> panels{
        {linearization_grid(WorkflowKind::cybershake, 1e-3, cost, *options),
         panel_title(WorkflowKind::cybershake, "lambda=0.001, c=0.1w  [paper fig. 2a]"),
         "fig2a_cybershake"},
        {linearization_grid(WorkflowKind::ligo, 1e-3, cost, *options),
         panel_title(WorkflowKind::ligo, "lambda=0.001, c=0.1w  [paper fig. 2b]"), "fig2b_ligo"},
        {linearization_grid(WorkflowKind::genome, 1e-4, cost, *options),
         panel_title(WorkflowKind::genome, "lambda=0.0001, c=0.1w  [paper fig. 2c]"),
         "fig2c_genome"},
    };
    run_figure(std::cout, panels, *options);
    std::cout << "\nPaper's observations to compare against: DF is (almost) always the best\n"
                 "linearization; on Ligo, RF beats BF because RF often behaves like DF.\n";
  } catch (const Error& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
  return 0;
}
