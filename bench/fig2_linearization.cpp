// Figure 2 of the paper: impact of the linearization strategy.
//
// Panels (a) CyberShake, (b) Ligo (lambda = 1e-3) and (c) Genome
// (lambda = 1e-4), all with c_i = r_i = 0.1 w_i, comparing BF / DF / RF
// for the two leading checkpointing strategies CkptW and CkptC over
// 50-700 tasks. Expected shape: DF lowest nearly everywhere; RF beats BF
// on Ligo.
//
// Thin shim over the experiment registry; `fpsched_run fig2` is the
// same run (same code path, byte-identical output).
#include "bench_common.hpp"

int main(int argc, char** argv) { return fpsched::bench::figure_main("fig2", argc, argv); }
