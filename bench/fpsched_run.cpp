// fpsched_run — ONE driver for every registered experiment.
//
//   $ fpsched_run --list
//   $ fpsched_run fig2 --quick                      # table + chart, as the shim binaries
//   $ fpsched_run fig2 fig7 --quick --format ndjson --out results/
//   $ fpsched_run fig2 --format ndjson --shard 1/2 --out results/   # process sharding
//
// Output is controlled by --format, a comma list over two sink levels:
// panel presentation (table, chart, csv) and per-scenario records
// (ndjson, json). Record sinks write full-precision (round-trip)
// values; scenario results are pure functions of their specs, so the
// NDJSON streams of `--shard 1/N .. N/N` concatenate to the
// bit-identical unsharded output — the basis for multi-process (and
// later multi-host) scale-out. Sharded runs skip panel assembly (a
// contiguous scenario slice does not cover whole panels) and accept
// only the concatenable NDJSON format.
#include <fstream>
#include <iostream>
#include <memory>
#include <optional>
#include <set>
#include <vector>

#include "bench_common.hpp"
#include "engine/result_sink.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "support/error.hpp"
#include "support/socket.hpp"

using namespace fpsched;
using namespace fpsched::bench;

namespace {

const std::vector<std::string>& known_formats() {
  // Canonical order doubles as emission order, so `--format csv,table`
  // still renders panels as table, chart, csv — matching the shims.
  static const std::vector<std::string> kFormats{"table", "chart", "csv", "ndjson", "json"};
  return kFormats;
}

std::set<std::string> parse_formats(const CliParser& cli) {
  std::set<std::string> formats;
  for (const std::string& item : cli.get_string_list("format")) {
    bool known = false;
    for (const std::string& format : known_formats()) known = known || format == item;
    if (!known) {
      throw InvalidArgument("option --format: unknown format '" + item +
                            "' (expected table, chart, csv, ndjson or json)");
    }
    formats.insert(item);
  }
  return formats;
}

void list_experiments(std::ostream& os) {
  const auto experiments = engine::ExperimentRegistry::global().experiments();
  std::size_t width = 0;
  for (const engine::Experiment* experiment : experiments)
    width = std::max(width, experiment->name.size());
  os << "registered experiments:\n";
  for (const engine::Experiment* experiment : experiments) {
    os << "  " << experiment->name << std::string(width - experiment->name.size() + 2, ' ')
       << experiment->summary << "\n";
  }
  os << "\nrun any subset by name, e.g.: fpsched_run fig2 fig7 --quick\n";
}

/// File stem for a record sink: sharded processes must not clobber each
/// other's output, so the shard id lands in the name.
std::string record_file(const std::string& out_dir, const std::string& experiment,
                        const engine::ShardSpec& shard, const std::string& extension) {
  std::string stem = out_dir + "/" + experiment;
  if (shard.active()) {
    stem += ".shard-" + std::to_string(shard.index) + "-of-" + std::to_string(shard.count);
  }
  return stem + "." + extension;
}

/// The per-experiment sink stack plus the streams backing it.
struct SinkStack {
  std::vector<std::unique_ptr<std::ofstream>> files;
  std::vector<std::unique_ptr<engine::ResultSink>> sinks;
  bool text = false;  // any stdout presentation sink => print heading/notes

  std::vector<engine::ResultSink*> pointers() const {
    std::vector<engine::ResultSink*> out;
    for (const auto& sink : sinks) out.push_back(sink.get());
    return out;
  }
};

std::ostream& open_record_stream(SinkStack& stack, const std::string& out_dir,
                                 const std::string& experiment,
                                 const engine::ShardSpec& shard,
                                 const std::string& extension) {
  if (out_dir.empty()) return std::cout;
  const std::string path = record_file(out_dir, experiment, shard, extension);
  auto file = std::make_unique<std::ofstream>(path);
  if (!file->good()) throw InvalidArgument("cannot open " + path + " for writing");
  std::ostream& os = *file;
  stack.files.push_back(std::move(file));
  return os;
}

SinkStack make_sinks(const std::set<std::string>& formats, const FigureOptions& options,
                     const std::string& out_dir, const std::string& experiment,
                     const engine::ShardSpec& shard) {
  SinkStack stack;
  for (const std::string& format : known_formats()) {
    if (!formats.contains(format)) continue;
    if (format == "table") {
      stack.sinks.push_back(std::make_unique<engine::TableSink>(std::cout));
      stack.text = true;
    } else if (format == "chart") {
      stack.sinks.push_back(std::make_unique<engine::AsciiChartSink>(std::cout));
      stack.text = true;
    } else if (format == "csv") {
      const std::string dir = options.csv_dir.empty() ? out_dir : options.csv_dir;
      if (dir.empty()) {
        throw InvalidArgument("csv output needs a directory: pass --csv <dir> or --out <dir>");
      }
      stack.sinks.push_back(std::make_unique<engine::CsvSink>(dir, &std::cout));
    } else if (format == "ndjson") {
      stack.sinks.push_back(std::make_unique<engine::NdjsonSink>(
          open_record_stream(stack, out_dir, experiment, shard, "ndjson")));
    } else if (format == "json") {
      stack.sinks.push_back(std::make_unique<engine::JsonSink>(
          open_record_stream(stack, out_dir, experiment, shard, "json")));
    }
  }
  return stack;
}

}  // namespace

int main(int argc, char** argv) {
  CliParser cli(
      "fpsched_run — list and run registered experiments (paper figures and sweep studies).");
  cli.allow_positionals("experiment", "experiment names to run, in order (see --list)");
  cli.add_flag("list", "list the registered experiments and exit");
  cli.add_option("format", "table,chart",
                 "comma list of output sinks: table, chart, csv (panel level), "
                 "ndjson, json (record level)");
  cli.add_option("out", "",
                 "output directory for file sinks (<experiment>.ndjson/.json, CSV when --csv "
                 "is not given); empty streams records to stdout");
  cli.add_option("shard", "",
                 "run slice I/N of the flattened scenario list (e.g. 1/2); --format ndjson "
                 "only — shard outputs concatenate to the bit-identical unsharded run");
  add_sweep_options(cli);
  add_trial_options(cli);
  // Observability is stderr/file-only: record and panel output stay
  // byte-identical whether these are on or off.
  cli.add_option("trace", "",
                 "write a chrome://tracing JSON of the run's spans to this file");
  cli.add_flag("stats", "print the telemetry registry as JSON to stderr after the run");
  try {
    // SIGPIPE must not kill an hours-long run whose consumer went away
    // (`fpsched_run ... | head`, a vanished reader of --out on a FIFO):
    // with the signal ignored, writes fail with EPIPE, the stream check
    // after each run reports it, and the process exits cleanly.
    ignore_sigpipe();
    const auto options = parse_figure_options(cli, argc, argv);
    if (!options) return 0;
    if (cli.get_flag("list")) {
      list_experiments(std::cout);
      return 0;
    }
    const std::vector<std::string>& names = cli.positionals();
    if (names.empty()) {
      // An argument-less invocation is someone exploring, not a run:
      // show the usage, and exit non-zero so scripts notice.
      std::cerr << "error: no experiments named and no --list\n\nusage: fpsched_run "
                   "<experiment>... [options]\n\n"
                << cli.help_text();
      return 2;
    }

    engine::ShardSpec shard;
    if (const std::string raw = cli.get_string("shard"); !raw.empty()) {
      shard = engine::ShardSpec::parse(raw);
    }
    std::set<std::string> formats = parse_formats(cli);
    // --csv implies the csv sink, as with the per-figure binaries.
    if (!options->csv_dir.empty()) formats.insert("csv");
    if (shard.active()) {
      for (const std::string& format : formats) {
        // Panel formats need the whole grid; JSON arrays are complete
        // documents, so concatenating per-shard arrays would not merge to
        // the unsharded file. Only the NDJSON stream concatenates.
        if (format != "ndjson") {
          throw InvalidArgument("--shard runs emit concatenable per-scenario records only; "
                                "use --format ndjson, not " +
                                format);
        }
      }
    }
    const std::string out_dir = cli.get_string("out");
    if (!out_dir.empty()) {
      // Fail fast when no sink would actually target --out: a possibly
      // hours-long run must not end with a created-but-empty directory.
      // CSV counts only when it falls back to --out (--csv wins).
      const bool out_used = formats.contains("ndjson") || formats.contains("json") ||
                            (formats.contains("csv") && options->csv_dir.empty());
      if (!out_used) {
        throw InvalidArgument(
            "--out would receive no output: add ndjson, json or csv to --format "
            "(csv writes to --csv when that is given)");
      }
      engine::ensure_output_directory(out_dir);
    }

    // Resolve every name before running anything: a typo in the last name
    // should fail fast, not after hours of grid evaluation.
    std::vector<const engine::Experiment*> experiments;
    for (const std::string& name : names) {
      experiments.push_back(&engine::ExperimentRegistry::global().find(name));
    }
    const std::string trace_path = cli.get_string("trace");
    if (!trace_path.empty()) obs::start_tracing();
    const bool records_to_stdout =
        out_dir.empty() && (formats.contains("ndjson") || formats.contains("json"));
    for (const engine::Experiment* experiment : experiments) {
      const SinkStack stack = make_sinks(formats, *options, out_dir, experiment->name, shard);
      const auto sinks = stack.pointers();
      engine::run_experiment(*experiment, *options, sinks, stack.text ? &std::cout : nullptr,
                             shard);
      // With SIGPIPE ignored a dead consumer surfaces as a failed
      // stream, not a dead process — but silently truncated output must
      // still fail the run. Flush first: a buffered failure (full disk)
      // would otherwise only surface in the destructor, after the check.
      for (const auto& file : stack.files) {
        file->flush();
        if (!file->good()) {
          throw Error("record stream for " + experiment->name +
                      " failed mid-write (closed pipe or out of disk space?)");
        }
      }
      if (records_to_stdout || stack.text) {
        std::cout.flush();
        if (!std::cout.good()) {
          throw Error("stdout stream failed mid-write (closed pipe?)");
        }
      }
    }
    if (!trace_path.empty()) {
      obs::stop_tracing();
      obs::write_trace_file(trace_path);
    }
    if (cli.get_flag("stats")) {
      std::cerr << obs::MetricsRegistry::global().json() << "\n";
    }
  } catch (const Error& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
  return 0;
}
